//! Online delta ingestion for the serving engine.
//!
//! A [`Recommender`](crate::Recommender) built with
//! [`Recommender::from_inference_online`](crate::Recommender::from_inference_online)
//! owns the frozen encoder ([`InferenceModel`]) alongside its cached tables
//! and can ingest [`GraphDelta`](cdrib_graph::GraphDelta)s: the seen-item
//! graphs absorb the new interactions, the encoder re-encodes only the
//! affected entities, and the served embedding tables are patched **behind a
//! copy-on-write epoch swap** — new values are written into a shadow copy of
//! the affected tables, which then replaces the active table in one
//! `mem::swap`, so a reader holding the engine (e.g. the `thread::scope`
//! workers inside a batch) can never observe a torn, half-patched table.
//! Rust's `&mut` exclusivity already serialises updates against batches;
//! the shadow swap keeps the guarantee structural rather than borrowing it
//! from the checker, and gives each published table state an epoch number.
//!
//! The shadow lags the active table by exactly one delta: each apply first
//! catches the shadow up on the rows the *previous* swap left stale, then
//! writes the new rows, then swaps. Costs one extra copy of the affected
//! domain's tables and O(dirty rows) copies per delta — never a full-table
//! rebuild.

use crate::error::{Result, ServeError};
use cdrib_core::InferenceModel;
use cdrib_data::DomainId;
use cdrib_eval::EmbeddingScorer;
use cdrib_graph::DeltaEffect;
use cdrib_tensor::{QuantizedTable, Tensor};

/// Receipt of one [`Recommender::apply_delta`](crate::Recommender::apply_delta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The table epoch the delta published (monotonically increasing).
    pub epoch: u64,
    /// Users appended to the domain.
    pub users_added: usize,
    /// Items appended to the domain (they join the scored catalogue
    /// immediately).
    pub items_added: usize,
    /// Edges inserted into the seen-item graph.
    pub edges_added: usize,
    /// Edges skipped as duplicates.
    pub duplicate_edges: usize,
    /// Edges retracted from the seen-item graph (explicit removals plus
    /// edges dropped by erasures and delistings).
    pub edges_removed: usize,
    /// Removal requests naming an interaction not present — counted no-ops.
    pub missing_edges: usize,
    /// Users erased (tombstoned with zeroed embedding rows).
    pub users_erased: usize,
    /// Items delisted (tombstoned catalogue slots excluded from top-K).
    pub items_delisted: usize,
    /// User embedding rows re-encoded and patched.
    pub users_reencoded: usize,
    /// Item embedding rows re-encoded and patched.
    pub items_reencoded: usize,
    /// Sequence number the delta was durably logged under, when the engine
    /// carries a write-ahead log (see [`crate::wal`]); `None` for
    /// memory-only engines.
    pub wal_seq: Option<u64>,
}

/// The updater a delta-capable recommender carries: the frozen encoder with
/// its incremental caches, reusable effect storage, and the shadow tables of
/// the epoch swap.
pub(crate) struct OnlineUpdater {
    pub(crate) inference: InferenceModel,
    /// Reusable receipt storage for graph applies.
    pub(crate) effect: DeltaEffect,
    /// Lazily materialised shadow of each served table
    /// (`x_users, x_items, y_users, y_items`).
    shadow: [Option<Tensor>; 4],
    /// Rows each shadow is missing relative to its active table (the rows
    /// the previous swap patched).
    pending: [Vec<u32>; 4],
    /// Shadow/pending state of the int8 item-table mirrors (`x_items`,
    /// `y_items`), driven by the same protocol whenever the engine carries
    /// quantised tables.
    quant_shadow: [Option<QuantizedTable>; 2],
    quant_pending: [Vec<u32>; 2],
}

/// Slot of a domain's user/item table in the shadow/pending arrays.
fn slots(domain: DomainId) -> (usize, usize) {
    match domain {
        DomainId::X => (0, 1),
        DomainId::Y => (2, 3),
    }
}

/// Static table names, matching [`EmbeddingScorer`]'s field names.
const TABLE_NAMES: [&str; 4] = ["x_users", "x_items", "y_users", "y_items"];

impl OnlineUpdater {
    pub(crate) fn new(inference: InferenceModel) -> Self {
        OnlineUpdater {
            inference,
            effect: DeltaEffect::new(),
            shadow: [None, None, None, None],
            pending: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            quant_shadow: [None, None],
            quant_pending: [Vec::new(), Vec::new()],
        }
    }

    /// Publishes the encoder's freshly re-encoded rows of `domain` into the
    /// served tables through the shadow-swap protocol described in the
    /// module docs. **Both** tables are validated before the first swap, so
    /// a rejected row leaves the served tables entirely unpublished — never
    /// with one table ahead of the other. Warm calls (shadows materialised,
    /// no row growth) are allocation-free.
    pub(crate) fn patch_tables(
        &mut self,
        scorer: &mut EmbeddingScorer,
        quant_items: Option<&mut QuantizedTable>,
        domain: DomainId,
    ) -> Result<()> {
        let OnlineUpdater {
            inference,
            shadow,
            pending,
            quant_shadow,
            quant_pending,
            ..
        } = self;
        let to_serve = |e: cdrib_core::CoreError| ServeError::Update { detail: e.to_string() };
        let (user_slot, item_slot) = slots(domain);
        let src_users = inference.cached_user_table(domain).map_err(to_serve)?;
        let dirty_users = inference.last_dirty_users(domain).map_err(to_serve)?;
        let src_items = inference.cached_item_table(domain).map_err(to_serve)?;
        let dirty_items = inference.last_dirty_items(domain).map_err(to_serve)?;
        check_finite(TABLE_NAMES[user_slot], src_users, dirty_users)?;
        check_finite(TABLE_NAMES[item_slot], src_items, dirty_items)?;
        let (active_users, active_items) = match domain {
            DomainId::X => (&mut scorer.x_users, &mut scorer.x_items),
            DomainId::Y => (&mut scorer.y_users, &mut scorer.y_items),
        };
        patch_one(
            active_users,
            &mut shadow[user_slot],
            &mut pending[user_slot],
            src_users,
            dirty_users,
        );
        patch_one(
            active_items,
            &mut shadow[item_slot],
            &mut pending[item_slot],
            src_items,
            dirty_items,
        );
        // The int8 mirror follows the same shadow-swap: exactly the dirty
        // re-encoded rows are re-quantised from the fresh f32 rows, so the
        // mirror is always a from-scratch quantisation of the served table.
        if let Some(quant) = quant_items {
            let qslot = match domain {
                DomainId::X => 0,
                DomainId::Y => 1,
            };
            patch_one_quant(
                quant,
                &mut quant_shadow[qslot],
                &mut quant_pending[qslot],
                src_items,
                dirty_items,
            );
        }
        Ok(())
    }
}

/// Serving must never rank on garbage: rejects non-finite incoming rows
/// before anything is published (same invariant the constructor enforces).
fn check_finite(name: &'static str, src: &Tensor, dirty: &[u32]) -> Result<()> {
    for &r in dirty {
        if src.row(r as usize).iter().any(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteEmbeddings { table: name });
        }
    }
    Ok(())
}

/// One table's shadow-swap publish: catch the shadow up, write the fresh
/// rows, swap it in, remember what the new shadow now lacks. Infallible —
/// validation happens across all tables before the first publish.
fn patch_one(active: &mut Tensor, shadow: &mut Option<Tensor>, pending: &mut Vec<u32>, src: &Tensor, dirty: &[u32]) {
    let shadow = shadow.get_or_insert_with(|| active.clone());
    // 1. Catch up on the rows the previous swap patched into `active`.
    shadow.resize_rows(active.rows());
    for &r in pending.iter() {
        shadow.row_mut(r as usize).copy_from_slice(active.row(r as usize));
    }
    pending.clear();
    // 2. Write this delta's rows (growing for new entities).
    shadow.resize_rows(src.rows());
    for &r in dirty {
        shadow.row_mut(r as usize).copy_from_slice(src.row(r as usize));
    }
    // 3. The epoch swap: the fully patched table becomes active atomically.
    std::mem::swap(active, shadow);
    // 4. The demoted table is now one delta behind.
    pending.extend_from_slice(dirty);
}

/// The int8 counterpart of [`patch_one`]: same catch-up / write / swap /
/// remember protocol over a [`QuantizedTable`], re-quantising the dirty rows
/// from their fresh f32 source. Warm calls (shadow materialised, no row
/// growth) are allocation-free.
fn patch_one_quant(
    active: &mut QuantizedTable,
    shadow: &mut Option<QuantizedTable>,
    pending: &mut Vec<u32>,
    src: &Tensor,
    dirty: &[u32],
) {
    let shadow = shadow.get_or_insert_with(|| active.clone());
    // 1. Catch up on the rows the previous swap patched into `active`.
    shadow.resize_rows(active.rows());
    for &r in pending.iter() {
        shadow.copy_row_from(r as usize, active, r as usize);
    }
    pending.clear();
    // 2. Re-quantise this delta's rows (growing for new entities).
    shadow.resize_rows(src.rows());
    for &r in dirty {
        shadow.requantize_row(r as usize, src.row(r as usize));
    }
    // 3. The epoch swap.
    std::mem::swap(active, shadow);
    // 4. The demoted mirror is now one delta behind.
    pending.extend_from_slice(dirty);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_one_publishes_and_tracks_lag() {
        let mut active = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut shadow = None;
        let mut pending = Vec::new();
        // Delta 1: patch row 1 and grow to 3 rows (row 2 fresh).
        let src = Tensor::from_vec(3, 2, vec![0.0, 0.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        patch_one(&mut active, &mut shadow, &mut pending, &src, &[1, 2]);
        assert_eq!(active.rows(), 3);
        assert_eq!(active.row(0), &[1.0, 2.0]);
        assert_eq!(active.row(1), &[30.0, 40.0]);
        assert_eq!(active.row(2), &[50.0, 60.0]);
        assert_eq!(pending, vec![1, 2]);
        // The demoted shadow still holds the pre-delta state.
        assert_eq!(shadow.as_ref().unwrap().rows(), 2);
        assert_eq!(shadow.as_ref().unwrap().row(1), &[3.0, 4.0]);
        // Delta 2: patch row 0; the catch-up must bring rows 1/2 along.
        let src2 = Tensor::from_vec(3, 2, vec![10.0, 20.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        patch_one(&mut active, &mut shadow, &mut pending, &src2, &[0]);
        assert_eq!(active.row(0), &[10.0, 20.0]);
        assert_eq!(active.row(1), &[30.0, 40.0]);
        assert_eq!(active.row(2), &[50.0, 60.0]);
        assert_eq!(pending, vec![0]);
    }

    #[test]
    fn patch_one_quant_tracks_the_f32_table_exactly() {
        // Whatever sequence of deltas runs, the quant mirror must equal a
        // from-scratch quantisation of the post-delta f32 table.
        let initial = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut active = QuantizedTable::from_tensor(&initial);
        let mut shadow = None;
        let mut pending = Vec::new();
        // Delta 1: row 1 changes, row 2 appears.
        let src = Tensor::from_vec(3, 2, vec![0.0, 0.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
        patch_one_quant(&mut active, &mut shadow, &mut pending, &src, &[1, 2]);
        let mut want = initial.clone();
        want.resize_rows(3);
        want.row_mut(1).copy_from_slice(&[30.0, 40.0]);
        want.row_mut(2).copy_from_slice(&[50.0, 60.0]);
        assert_eq!(active, QuantizedTable::from_tensor(&want));
        assert_eq!(pending, vec![1, 2]);
        // Delta 2: row 0 changes; catch-up must carry rows 1/2 along.
        let src2 = Tensor::from_vec(3, 2, vec![10.0, 20.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        patch_one_quant(&mut active, &mut shadow, &mut pending, &src2, &[0]);
        want.row_mut(0).copy_from_slice(&[10.0, 20.0]);
        assert_eq!(active, QuantizedTable::from_tensor(&want));
        assert!(active.validate().is_ok());
    }

    #[test]
    fn non_finite_rows_are_rejected_before_any_publish() {
        let mut src = Tensor::ones(2, 2);
        src.set(1, 0, f32::NAN);
        let err = check_finite("y_items", &src, &[1]);
        assert!(matches!(err, Err(ServeError::NonFiniteEmbeddings { table: "y_items" })));
        // Rows outside the dirty set are not inspected.
        check_finite("y_items", &src, &[0]).unwrap();
        check_finite("y_items", &src, &[]).unwrap();
    }
}
