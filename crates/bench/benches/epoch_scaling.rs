//! Validates the complexity claim of §III-D3: one CDRIB training step costs
//! `O((|E_X| + |E_Y|) * F^2)` — i.e. roughly linear in the number of
//! interactions for a fixed embedding dimension. The benchmark measures a
//! full loss + backward step on scenarios of increasing size.

use cdrib_core::{CdribConfig, CdribModel};
use cdrib_data::{generate_scenario, SplitConfig, SyntheticConfig};
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::Tape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scenario_of_size(users: usize) -> cdrib_data::CdrScenario {
    let cfg = SyntheticConfig {
        name: format!("scaling-{users}"),
        n_overlap: users / 4,
        n_users_x_only: users / 2,
        n_users_y_only: users / 2,
        n_items_x: (users / 2).max(60),
        n_items_y: (users / 2).max(60),
        mean_interactions: 12.0,
        min_item_interactions: 3,
        seed: 7,
        ..SyntheticConfig::default()
    };
    generate_scenario(&cfg, SplitConfig::default()).expect("scaling scenario")
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdrib_training_step");
    for users in [200usize, 400, 800] {
        let scenario = scenario_of_size(users);
        let edges = scenario.x.train.n_edges() + scenario.y.train.n_edges();
        let config = CdribConfig {
            dim: 32,
            layers: 2,
            batches_per_epoch: 1,
            ..CdribConfig::fast_test()
        };
        let mut model = CdribModel::new(&config, &scenario).unwrap();
        let mut rng = component_rng(1, "bench-step");
        let batches = model.make_batches(&scenario, &mut rng).unwrap();
        let (xb, yb) = batches[0].clone();
        let mut tape = Tape::new();
        group.bench_with_input(BenchmarkId::new("edges", edges), &edges, |b, _| {
            b.iter(|| {
                model.params_mut().zero_grad();
                tape.reset();
                let (loss, _) = model.loss(&mut tape, &xb, &yb, &mut rng).unwrap();
                black_box(tape.backward(loss, model.params_mut()).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = scaling;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_step
}
criterion_main!(scaling);
