//! Quickstart: build a synthetic cross-domain scenario, train CDRIB, and
//! evaluate cold-start recommendations in both directions.
//!
//! Run with: `cargo run --release --example quickstart`

use cdrib::prelude::*;

fn main() {
    // 1. Build the Game-Video scenario at the tiny scale (seconds to train).
    //    The generator mimics the paper's preprocessing: items with fewer
    //    than 10 interactions and users with fewer than 5 are dropped, and
    //    ~20% of overlapping users are held out as cold-start users.
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 42).expect("scenario");
    let stats = scenario.stats();
    println!("Scenario {}:", stats.name);
    println!(
        "  {}: {} users, {} items, {} training interactions ({:.2}% dense)",
        stats.domain_x.name,
        stats.domain_x.n_users,
        stats.domain_x.n_items,
        stats.domain_x.n_train,
        stats.domain_x.density_percent
    );
    println!(
        "  {}: {} users, {} items, {} training interactions ({:.2}% dense)",
        stats.domain_y.name,
        stats.domain_y.n_users,
        stats.domain_y.n_items,
        stats.domain_y.n_train,
        stats.domain_y.density_percent
    );
    println!("  overlapping training users: {}\n", stats.n_train_overlap);

    // 2. Train CDRIB. The configuration mirrors §IV-B3 scaled to CPU size.
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        epochs: 60,
        eval_every: 15,
        ..CdribConfig::default()
    };
    println!(
        "Training CDRIB ({} epochs, dim {}, {} layers)...",
        config.epochs, config.dim, config.layers
    );
    let start = std::time::Instant::now();
    let trained = train(&config, &scenario).expect("training");
    println!(
        "  done in {:.1}s, best validation MRR {:.4}\n",
        start.elapsed().as_secs_f64(),
        trained.report.best_validation_mrr.unwrap_or(0.0)
    );

    // 3. Evaluate with the paper's leave-one-out protocol (999 negatives when
    //    the catalogue is big enough; automatically reduced here).
    let eval_cfg = EvalConfig {
        n_negatives: cdrib::core::validation_negatives(&scenario),
        seed: 7,
        max_cases: None,
    };
    let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).expect("eval");
    println!("Cold-start test results:");
    println!(
        "  Game -> Video : MRR {:.2}%  NDCG@10 {:.2}%  HR@10 {:.2}%  ({} cases)",
        x2y.metrics.mrr * 100.0,
        x2y.metrics.ndcg10 * 100.0,
        x2y.metrics.hr10 * 100.0,
        x2y.n_cases()
    );
    println!(
        "  Video -> Game : MRR {:.2}%  NDCG@10 {:.2}%  HR@10 {:.2}%  ({} cases)",
        y2x.metrics.mrr * 100.0,
        y2x.metrics.ndcg10 * 100.0,
        y2x.metrics.hr10 * 100.0,
        y2x.n_cases()
    );

    // 4. Produce a concrete top-5 recommendation for one cold-start user.
    if let Some(case) = scenario.cold_x_to_y.test.first() {
        let user = case.user;
        let scorer = trained.scorer();
        let all_items: Vec<u32> = (0..scenario.y.n_items as u32).collect();
        let scores = cdrib::eval::ColdStartScorer::score_items(&scorer, Direction::X_TO_Y, user, &all_items);
        let mut ranked: Vec<(u32, f32)> = all_items.iter().copied().zip(scores).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("\nTop-5 Video recommendations for cold-start user {user} (only observed in Game):");
        for (rank, (item, score)) in ranked.iter().take(5).enumerate() {
            let held_out = scenario.y.full.has_edge(user as usize, *item as usize);
            println!(
                "  {}. item {:4}  score {:.3}{}",
                rank + 1,
                item,
                score,
                if held_out { "   <- held-out ground truth" } else { "" }
            );
        }
    }
}
