//! Fault-injection harness for the delta write-ahead log.
//!
//! The durability subsystem promises that [`Recommender::recover`] rebuilds
//! the exact pre-crash engine — bitwise on all four embedding tables,
//! exactly-equal top-K — for the longest valid prefix of the log, and that
//! every way a log can be damaged degrades *gracefully*: the damaged bytes
//! land in a `.quarantine` sidecar, the report says precisely what was
//! dropped, and the engine never panics and never serves silently wrong
//! state. This harness drives a deterministic crash-point matrix against a
//! scripted cross-domain delta sequence:
//!
//! 1. **kill points** — the process dies before/after each append, i.e. the
//!    log is every append-boundary prefix of the full file: recovery is
//!    clean and matches the live engine's state at that boundary;
//! 2. **torn tails** — the file is truncated at *every* byte boundary of
//!    the final record: recovery keeps the longest valid prefix, the torn
//!    bytes are quarantined verbatim;
//! 3. **bit rot** — a bit flipped in the final record's length prefix,
//!    body or checksum, in an interior record, and in the file header:
//!    record damage ends the prefix there, header damage abandons the log
//!    wholesale (falling back to the bare base);
//! 4. **sequence skew** — duplicated, reordered and dropped records are
//!    rejected structurally even though every byte checksums clean;
//! 5. **foreign logs** — version skew, garbage, empty files and logs from
//!    a different base all fall back to the base with a typed reason;
//! 6. **compaction crash windows** — old-base+old-log, new-base+old-log
//!    and new-base+new-log all recover to identical state, because
//!    sequence numbers are global and recovery skips already-folded
//!    records.
//!
//! The state comparison extends the differential pattern of
//! `tests/delta_parity.rs`: bitwise table equality plus exact top-K probes.
//! Scratch files live under `target/wal-fault-injection/` so CI can upload
//! quarantine sidecars when a case fails.

use cdrib_core::{CdribConfig, CdribModel};
use cdrib_data::{build_preset, Direction, DomainId, Scale, ScenarioKind};
use cdrib_graph::GraphDelta;
use cdrib_serve::{wal, DeltaWal, Recommendation, Recommender, RecoveryReport, Request, WalError};
use cdrib_tensor::Tensor;
use std::fs;
use std::path::{Path, PathBuf};

/// Scripted deltas in the fixture log.
const STEPS: usize = 9;

/// A fresh scratch directory under `target/wal-fault-injection/`.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new("target").join("wal-fault-injection").join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The engine state a recovery must reproduce: the four embedding tables
/// (compared bitwise) and top-K lists for a probe grid covering both
/// directions, old/new users and the cold-start tail.
struct Snapshot {
    tables: [Tensor; 4],
    topk: Vec<(Request, Vec<Recommendation>)>,
}

fn snapshot(rec: &mut Recommender) -> Snapshot {
    let tables = [
        rec.scorer().x_users.clone(),
        rec.scorer().x_items.clone(),
        rec.scorer().y_users.clone(),
        rec.scorer().y_items.clone(),
    ];
    let mut topk = Vec::new();
    let mut out = Vec::new();
    for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
        let n_source = rec.seen_graph(direction.source).n_users();
        for user in [0, n_source / 2, n_source - 1] {
            let request = Request {
                direction,
                user: user as u32,
                k: 10,
            };
            rec.recommend(&request, &mut out).unwrap();
            topk.push((request, out.clone()));
        }
    }
    Snapshot { tables, topk }
}

fn assert_matches(rec: &mut Recommender, snap: &Snapshot, context: &str) {
    assert_eq!(rec.scorer().x_users, snap.tables[0], "x_users differ: {context}");
    assert_eq!(rec.scorer().x_items, snap.tables[1], "x_items differ: {context}");
    assert_eq!(rec.scorer().y_users, snap.tables[2], "y_users differ: {context}");
    assert_eq!(rec.scorer().y_items, snap.tables[3], "y_items differ: {context}");
    let mut out = Vec::new();
    for (request, want) in &snap.topk {
        rec.recommend(request, &mut out).unwrap();
        assert_eq!(&out, want, "top-K differs for {request:?}: {context}");
    }
}

/// Step `step` of the scripted traffic, materialised against the engine's
/// *current* graphs: cold users arriving with and without history, catalogue
/// growth, duplicate interactions, quiet ticks — and the retraction side of
/// the lifecycle: an un-like, a GDPR erasure and an item delisting — all
/// alternating domains.
fn scripted_delta(step: usize, rec: &Recommender) -> (DomainId, GraphDelta) {
    let gx = rec.seen_graph(DomainId::X);
    let gy = rec.seen_graph(DomainId::Y);
    let (xu, xi) = (gx.n_users() as u32, gx.n_items() as u32);
    let (yu, yi) = (gy.n_users() as u32, gy.n_items() as u32);
    match step % 9 {
        // A cold user arrives in X with two interactions.
        0 => (
            DomainId::X,
            GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(xu, 0), (xu, xi - 1)],
                ..GraphDelta::empty()
            },
        ),
        // A cold user and a brand-new item in Y, plus a duplicate draw.
        1 => (
            DomainId::Y,
            GraphDelta {
                add_users: 1,
                add_items: 1,
                edges: vec![(yu, yi), (yu, 0), (0, 1)],
                ..GraphDelta::empty()
            },
        ),
        // A quiet tick.
        2 => (DomainId::X, GraphDelta::empty()),
        // Replayed events only — no growth, duplicate inside the batch.
        3 => (
            DomainId::Y,
            GraphDelta {
                add_users: 0,
                add_items: 0,
                edges: vec![(1, 1), (1, 1)],
                ..GraphDelta::empty()
            },
        ),
        // Two cold users in X, one silent, with a new item.
        4 => (
            DomainId::X,
            GraphDelta {
                add_users: 2,
                add_items: 1,
                edges: vec![(xu, xi), (xu + 1, 2)],
                ..GraphDelta::empty()
            },
        ),
        // One more Y interaction.
        5 => (
            DomainId::Y,
            GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(yu, 2)],
                ..GraphDelta::empty()
            },
        ),
        // An un-like: user 0 retracts their first X interaction; the
        // duplicated pair is a counted no-op (already removed in-batch).
        6 => {
            let e = (0, gx.items_of(0)[0]);
            (
                DomainId::X,
                GraphDelta {
                    remove_edges: vec![e, e],
                    ..GraphDelta::empty()
                },
            )
        }
        // GDPR erasure of the most recent X user.
        7 => (
            DomainId::X,
            GraphDelta {
                erase_users: vec![xu - 1],
                ..GraphDelta::empty()
            },
        ),
        // The most recent Y item is delisted from the catalogue.
        _ => (
            DomainId::Y,
            GraphDelta {
                delist_items: vec![yi - 1],
                ..GraphDelta::empty()
            },
        ),
    }
}

/// A durable engine driven through the scripted sequence, with the state
/// snapshot and log-file length captured at every append boundary.
struct Fixture {
    dir: PathBuf,
    base: PathBuf,
    log: PathBuf,
    /// `snapshots[i]` is the live state after `i` deltas.
    snapshots: Vec<Snapshot>,
    /// `boundaries[i]` is the log length after `i` appends (`boundaries[0]`
    /// is the header length).
    boundaries: Vec<u64>,
    /// The full final log image.
    log_bytes: Vec<u8>,
    /// The live engine, holding the log open at `log`.
    live: Recommender,
}

fn build_fixture(name: &str) -> Fixture {
    let dir = scratch(name);
    let base = dir.join("base.cdrb");
    let log = dir.join("deltas.wal");
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 4242).unwrap();
    let config = CdribConfig {
        layers: 2,
        ..CdribConfig::fast_test()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    fs::write(&base, model.save_bytes(&scenario)).unwrap();

    let (mut live, report) = Recommender::recover(&base, &log).unwrap();
    assert!(report.created_log, "first boot must create the log");
    assert!(report.clean(), "first boot must be clean: {report:?}");
    let mut snapshots = vec![snapshot(&mut live)];
    let mut boundaries = vec![fs::metadata(&log).unwrap().len()];
    for step in 0..STEPS {
        let (domain, delta) = scripted_delta(step, &live);
        let outcome = live.apply_delta(domain, &delta).unwrap();
        assert_eq!(outcome.wal_seq, Some(step as u64 + 1), "appends carry contiguous seqs");
        live.wal_sync().unwrap();
        snapshots.push(snapshot(&mut live));
        boundaries.push(fs::metadata(&log).unwrap().len());
    }
    let log_bytes = fs::read(&log).unwrap();
    assert_eq!(*boundaries.last().unwrap(), log_bytes.len() as u64);
    Fixture {
        dir,
        base,
        log,
        snapshots,
        boundaries,
        log_bytes,
        live,
    }
}

impl Fixture {
    /// A per-case subdirectory, so every case keeps its own log and
    /// quarantine sidecar for post-mortem upload.
    fn case_dir(&self, label: &str) -> PathBuf {
        let d = self.dir.join(label);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// Writes `bytes` as a log image in its own case directory and recovers
    /// against the shared base.
    fn recover_image(&self, label: &str, bytes: &[u8]) -> (Recommender, RecoveryReport, PathBuf) {
        let log = self.case_dir(label).join("deltas.wal");
        fs::write(&log, bytes).unwrap();
        let (rec, report) = Recommender::recover(&self.base, &log).unwrap();
        (rec, report, log)
    }

    /// Byte range of record `i` (0-based) in the log image.
    fn record_span(&self, i: usize) -> std::ops::Range<usize> {
        self.boundaries[i] as usize..self.boundaries[i + 1] as usize
    }
}

/// Kill points: the log is every append-boundary prefix of the full file
/// (the crash happened between appends, or before/after the whole run).
/// Recovery is clean, replays exactly the logged prefix, and reproduces the
/// live state at that boundary bitwise.
#[test]
fn kill_point_matrix_replays_every_append_boundary() {
    let fx = build_fixture("kill-points");
    for (i, &end) in fx.boundaries.iter().enumerate() {
        let label = format!("after-{i}");
        let (mut rec, report, log) = fx.recover_image(&label, &fx.log_bytes[..end as usize]);
        assert!(report.clean(), "prefix of {i} appends must recover clean: {report:?}");
        assert_eq!(report.replayed, i);
        assert_eq!(report.last_seq, i as u64);
        assert_eq!(rec.wal_applied_seq(), Some(i as u64));
        assert!(report.quarantine.is_none(), "clean recovery must not quarantine");
        assert!(
            fs::read_dir(log.parent().unwrap())
                .unwrap()
                .all(|e| !e.unwrap().file_name().to_string_lossy().contains(".quarantine.")),
            "clean recovery must leave no sidecar files"
        );
        assert_matches(&mut rec, &fx.snapshots[i], &format!("kill point after {i} appends"));
    }

    // The recovered engine keeps ingesting durably where the log left off,
    // staying in lockstep with the uninterrupted live engine.
    let (mut rec, _, log) = fx.recover_image("continue", &fx.log_bytes);
    let (domain, delta) = scripted_delta(STEPS, &rec);
    let outcome = rec.apply_delta(domain, &delta).unwrap();
    assert_eq!(outcome.wal_seq, Some(STEPS as u64 + 1));
    rec.wal_sync().unwrap();
    let Fixture { mut live, .. } = fx;
    live.apply_delta(domain, &delta).unwrap();
    let want = snapshot(&mut live);
    assert_matches(&mut rec, &want, "continued ingest after recovery");
    // And the extended log itself replays clean.
    drop(rec);
    let (mut again, report) =
        Recommender::recover(log.parent().unwrap().parent().unwrap().join("base.cdrb"), &log).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.replayed, STEPS + 1);
    assert_matches(&mut again, &want, "re-recovery of the extended log");
}

/// Torn tails: the file is cut at every byte boundary inside the final
/// record (a crash mid-append). Recovery keeps the longest valid prefix,
/// truncates the log back to it, and preserves the torn bytes verbatim in
/// the quarantine sidecar.
#[test]
fn torn_tail_truncation_matrix_keeps_longest_valid_prefix() {
    let fx = build_fixture("torn-tail");
    let last_start = fx.boundaries[STEPS - 1] as usize;
    for cut in last_start + 1..fx.log_bytes.len() {
        let label = format!("cut-{cut}");
        let (mut rec, report, log) = fx.recover_image(&label, &fx.log_bytes[..cut]);
        assert_eq!(report.replayed, STEPS - 1, "cut at byte {cut}");
        assert!(
            matches!(report.tail, Some(WalError::TornTail { .. })),
            "cut at byte {cut} must read as a torn tail: {:?}",
            report.tail
        );
        assert!(report.fallback.is_none(), "tail damage must not abandon the log");
        assert_eq!(report.dropped_bytes, (cut - last_start) as u64);
        let side = report.quarantine.as_ref().expect("torn bytes must be quarantined");
        assert_eq!(
            fs::read(side).unwrap(),
            &fx.log_bytes[last_start..cut],
            "quarantine must hold the torn bytes verbatim (cut {cut})"
        );
        assert_eq!(
            fs::metadata(&log).unwrap().len(),
            last_start as u64,
            "log must be truncated to the valid prefix (cut {cut})"
        );
        assert_matches(
            &mut rec,
            &fx.snapshots[STEPS - 1],
            &format!("torn tail, cut at byte {cut}"),
        );
    }
}

/// Bit rot: a single bit flipped at every byte of the final record (length
/// prefix, sequence number, domain tag, delta payload, checksum), in an
/// interior record, and in the file header. Record damage ends the prefix
/// at the damaged record; header damage abandons the log wholesale.
#[test]
fn bit_flip_matrix_is_always_detected() {
    let fx = build_fixture("bit-flips");
    let last_start = fx.boundaries[STEPS - 1] as usize;

    for pos in last_start..fx.log_bytes.len() {
        let mut bytes = fx.log_bytes.clone();
        bytes[pos] ^= 1 << (pos % 8);
        let label = format!("flip-{pos}");
        let (mut rec, report, _log) = fx.recover_image(&label, &bytes);
        assert!(
            report.fallback.is_none(),
            "record damage must not abandon the log (flip {pos})"
        );
        let tail = report
            .tail
            .as_ref()
            .unwrap_or_else(|| panic!("flip at byte {pos} went undetected"));
        assert!(
            matches!(
                tail,
                WalError::RecordChecksum { .. }
                    | WalError::TornTail { .. }
                    | WalError::BadRecord { .. }
                    | WalError::SequenceSkew { .. }
            ),
            "flip at byte {pos}: unexpected verdict {tail:?}"
        );
        assert_eq!(report.replayed, STEPS - 1, "flip at byte {pos}");
        assert_eq!(
            fs::read(report.quarantine.as_ref().unwrap()).unwrap(),
            &bytes[last_start..],
            "flip at byte {pos}"
        );
        assert_matches(&mut rec, &fx.snapshots[STEPS - 1], &format!("bit flip at byte {pos}"));
    }

    // A flip inside an interior record ends the prefix there: the later
    // (intact) records are unreachable past the damage and are quarantined
    // with it, never replayed out of order.
    let interior = 2;
    let span = fx.record_span(interior);
    for pos in [span.start, span.start + 6, span.end - 1] {
        let mut bytes = fx.log_bytes.clone();
        bytes[pos] ^= 0x10;
        let label = format!("interior-flip-{pos}");
        let (mut rec, report, _log) = fx.recover_image(&label, &bytes);
        assert_eq!(report.replayed, interior, "interior flip at byte {pos}");
        assert!(report.tail.is_some() && report.fallback.is_none());
        assert_eq!(report.dropped_bytes, (fx.log_bytes.len() - span.start) as u64);
        assert_matches(
            &mut rec,
            &fx.snapshots[interior],
            &format!("interior flip at byte {pos}"),
        );
    }

    // A flip inside the file header: the envelope checksum catches it, the
    // whole log is quarantined, and the engine starts from the bare base
    // with a fresh log — still able to ingest.
    let header_len = fx.boundaries[0] as usize;
    for pos in [1, 5, header_len / 2, header_len - 1] {
        let mut bytes = fx.log_bytes.clone();
        bytes[pos] ^= 1 << (pos % 8);
        let label = format!("header-flip-{pos}");
        let (mut rec, report, log) = fx.recover_image(&label, &bytes);
        assert!(
            matches!(report.fallback, Some(WalError::Header(_))),
            "header flip at byte {pos}: {:?}",
            report.fallback
        );
        assert_eq!(report.replayed, 0);
        assert!(report.created_log, "fallback must start a fresh log");
        assert_eq!(report.dropped_bytes, bytes.len() as u64);
        assert_eq!(fs::read(report.quarantine.as_ref().unwrap()).unwrap(), bytes);
        assert_matches(&mut rec, &fx.snapshots[0], &format!("header flip at byte {pos}"));
        let (domain, delta) = scripted_delta(0, &rec);
        assert_eq!(rec.apply_delta(domain, &delta).unwrap().wal_seq, Some(1));
        drop(rec);
        let scan = wal::scan_bytes(&fs::read(&log).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 1, "the fresh log holds the new record");
    }
}

/// Sequence skew: duplicated, reordered and dropped records checksum clean
/// but are rejected structurally by the monotone sequence numbers.
#[test]
fn duplicated_reordered_and_dropped_records_are_rejected() {
    let fx = build_fixture("sequence-skew");

    // Duplicate the final record: byte-identical, so only the sequence
    // number betrays it. The first copy replays, the duplicate is dropped.
    let final_span = fx.record_span(STEPS - 1);
    let mut dup = fx.log_bytes.clone();
    dup.extend_from_slice(&fx.log_bytes[final_span.clone()]);
    let (mut rec, report, _) = fx.recover_image("duplicate", &dup);
    assert_eq!(report.replayed, STEPS);
    assert!(
        matches!(
            report.tail,
            Some(WalError::SequenceSkew { expected, found, .. })
                if expected == STEPS as u64 + 1 && found == STEPS as u64
        ),
        "{:?}",
        report.tail
    );
    assert_eq!(report.dropped_bytes, final_span.len() as u64);
    assert_matches(&mut rec, &fx.snapshots[STEPS], "duplicated final record");

    // Swap the last two records: the prefix ends where order breaks.
    let prev_span = fx.record_span(STEPS - 2);
    let mut swapped = fx.log_bytes[..prev_span.start].to_vec();
    swapped.extend_from_slice(&fx.log_bytes[final_span.clone()]);
    swapped.extend_from_slice(&fx.log_bytes[prev_span.clone()]);
    let (mut rec, report, _) = fx.recover_image("reordered", &swapped);
    assert_eq!(report.replayed, STEPS - 2);
    assert!(
        matches!(
            report.tail,
            Some(WalError::SequenceSkew { expected, found, .. })
                if expected == STEPS as u64 - 1 && found == STEPS as u64
        ),
        "{:?}",
        report.tail
    );
    assert_matches(&mut rec, &fx.snapshots[STEPS - 2], "reordered records");

    // Drop an interior record: the gap is detected at the splice point and
    // nothing after it is replayed (replaying across a hole would fabricate
    // state).
    let hole = fx.record_span(3);
    let mut gapped = fx.log_bytes[..hole.start].to_vec();
    gapped.extend_from_slice(&fx.log_bytes[hole.end..]);
    let (mut rec, report, _) = fx.recover_image("gap", &gapped);
    assert_eq!(report.replayed, 3);
    assert!(
        matches!(
            report.tail,
            Some(WalError::SequenceSkew {
                expected: 4,
                found: 5,
                ..
            })
        ),
        "{:?}",
        report.tail
    );
    assert_matches(&mut rec, &fx.snapshots[3], "dropped interior record");
}

/// Unreadable or foreign logs: version skew, garbage bytes, empty and
/// header-truncated files, and a log whose sequence range cannot connect to
/// the base. All fall back to the bare base with a typed reason, preserve
/// the rejected file wholesale, and leave a working fresh log behind.
#[test]
fn unreadable_or_foreign_logs_fall_back_to_the_base() {
    let fx = build_fixture("fallback");
    let records = &fx.log_bytes[fx.boundaries[0] as usize..];

    let expect_fallback = |label: &str, bytes: &[u8], rec: &mut Recommender, report: &RecoveryReport| {
        assert_eq!(report.replayed, 0, "{label}");
        assert_eq!(report.skipped, 0, "{label}");
        assert!(report.created_log, "{label}: fallback must start a fresh log");
        assert_eq!(report.dropped_bytes, bytes.len() as u64, "{label}");
        assert_eq!(
            fs::read(report.quarantine.as_ref().unwrap()).unwrap(),
            bytes,
            "{label}: the whole file must be preserved"
        );
        assert_matches(rec, &fx.snapshots[0], label);
    };

    // Version skew: valid records under a future-format header.
    let mut skewed = cdrib_tensor::artifact::encode(wal::WAL_KIND, wal::WAL_VERSION + 1, &1u64.to_le_bytes());
    skewed.extend_from_slice(records);
    let (mut rec, report, _) = fx.recover_image("version-skew", &skewed);
    assert!(
        matches!(
            report.fallback,
            Some(WalError::Header(cdrib_tensor::ArtifactError::UnsupportedVersion { .. }))
        ),
        "{:?}",
        report.fallback
    );
    expect_fallback("version skew", &skewed, &mut rec, &report);

    // Garbage bytes.
    let garbage = b"this is not a write-ahead log".to_vec();
    let (mut rec, report, _) = fx.recover_image("garbage", &garbage);
    assert!(
        matches!(report.fallback, Some(WalError::Header(_))),
        "{:?}",
        report.fallback
    );
    expect_fallback("garbage", &garbage, &mut rec, &report);

    // An empty file and a file cut inside the header.
    for cut in [0usize, fx.boundaries[0] as usize / 2] {
        let bytes = fx.log_bytes[..cut].to_vec();
        let (mut rec, report, _) = fx.recover_image(&format!("header-cut-{cut}"), &bytes);
        assert!(
            matches!(report.fallback, Some(WalError::Header(_))),
            "cut at {cut}: {:?}",
            report.fallback
        );
        expect_fallback(&format!("header cut at {cut}"), &bytes, &mut rec, &report);
    }

    // A log that provably belongs to a different base: it starts at seq 5,
    // but the plain-model base has folded nothing.
    let foreign_log = fx.case_dir("foreign").join("deltas.wal");
    drop(DeltaWal::create(&foreign_log, 5).unwrap());
    let foreign_bytes = fs::read(&foreign_log).unwrap();
    let (mut rec, report) = Recommender::recover(&fx.base, &foreign_log).unwrap();
    assert!(
        matches!(
            report.fallback,
            Some(WalError::BaseLogMismatch {
                applied_seq: 0,
                first_seq: 5,
                records: 0
            })
        ),
        "{:?}",
        report.fallback
    );
    expect_fallback("foreign log", &foreign_bytes, &mut rec, &report);

    // After any fallback the engine ingests durably again.
    let (domain, delta) = scripted_delta(0, &rec);
    assert_eq!(rec.apply_delta(domain, &delta).unwrap().wal_seq, Some(1));
}

/// Compaction folds the log into a checkpoint base + fresh log via two
/// atomic renames. Every crash window between them recovers to the same
/// state: sequence numbers are global, so records the checkpoint already
/// folded are recognised and skipped, never double-applied.
#[test]
fn compaction_is_crash_safe_in_every_window() {
    let fx = build_fixture("compaction");
    let Fixture {
        dir,
        base,
        log,
        snapshots,
        log_bytes,
        mut live,
        ..
    } = fx;
    let stage = |label: &str, base_from: &Path, log_image: &[u8]| -> (PathBuf, PathBuf) {
        let d = dir.join(label);
        fs::create_dir_all(&d).unwrap();
        let b = d.join("base.cdrb");
        let l = d.join("deltas.wal");
        fs::copy(base_from, &b).unwrap();
        fs::write(&l, log_image).unwrap();
        (b, l)
    };

    // Window A staged before compaction runs: old base + old log.
    let (base_a, log_a) = stage("old-base-old-log", &base, &log_bytes);

    let report = live.compact().unwrap();
    assert_eq!(report.applied_seq, STEPS as u64);
    assert_eq!(report.log_bytes_folded, log_bytes.len() as u64);
    assert!(report.checkpoint_bytes > 0);
    assert!(
        !dir.join("base.cdrb.tmp").exists(),
        "compaction must clean up its temp files"
    );
    assert!(!dir.join("deltas.wal.tmp").exists());
    assert!(
        fs::metadata(&log).unwrap().len() < log_bytes.len() as u64,
        "compaction must shrink the log"
    );
    assert_matches(&mut live, &snapshots[STEPS], "live state must survive compaction");

    // Window B: crash between the two renames — new base + old log.
    let (base_b, log_b) = stage("new-base-old-log", &base, &log_bytes);
    // Window C: crash after both renames — new base + new (empty) log. A
    // stray temp file from a crash mid-atomic-write must be ignored.
    let (base_c, log_c) = stage("new-base-new-log", &base, &fs::read(&log).unwrap());
    fs::write(dir.join("new-base-new-log").join("base.cdrb.tmp"), b"torn checkpoint").unwrap();

    let cases = [
        ("old base + old log", &base_a, &log_a, STEPS, 0),
        ("new base + old log", &base_b, &log_b, 0, STEPS),
        ("new base + new log", &base_c, &log_c, 0, 0),
    ];
    for (label, b, l, replayed, skipped) in cases {
        let (mut rec, report) = Recommender::recover(b, l).unwrap();
        assert!(report.clean(), "{label}: {report:?}");
        assert_eq!(report.replayed, replayed, "{label}");
        assert_eq!(report.skipped, skipped, "{label}");
        assert_eq!(report.last_seq, STEPS as u64, "{label}");
        assert_matches(&mut rec, &snapshots[STEPS], label);
    }

    // Life continues after compaction: sequence numbers never reset, more
    // deltas land in the fresh log, and a second fold stays recoverable.
    for step in STEPS..STEPS + 2 {
        let (domain, delta) = scripted_delta(step, &live);
        let outcome = live.apply_delta(domain, &delta).unwrap();
        assert_eq!(outcome.wal_seq, Some(step as u64 + 1));
    }
    live.wal_sync().unwrap();
    let want = snapshot(&mut live);
    let (base_d, log_d) = stage("post-compaction", &base, &fs::read(&log).unwrap());
    let (mut rec, report) = Recommender::recover(&base_d, &log_d).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.base_applied_seq, STEPS as u64);
    assert_eq!(report.replayed, 2);
    assert_matches(&mut rec, &want, "recovery from checkpoint + post-compaction deltas");

    let second = live.compact().unwrap();
    assert_eq!(second.applied_seq, STEPS as u64 + 2);
    let (base_e, log_e) = stage("second-fold", &base, &fs::read(&log).unwrap());
    let (mut rec, report) = Recommender::recover(&base_e, &log_e).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.base_applied_seq, STEPS as u64 + 2);
    assert_eq!(report.replayed, 0);
    assert_matches(&mut rec, &want, "recovery after the second fold");
}

/// After a torn-tail recovery the engine resumes durable ingest: the
/// quarantined record's sequence number is re-issued (it was never
/// applied), the repaired log extends cleanly, and a second recovery of
/// the resumed log reproduces the resumed state. A *second* damage
/// incident — at the very same truncation offset — must land in its own
/// sidecar: quarantines are suffixed with the offset (plus a counter on
/// collision), so no incident's evidence is ever clobbered.
#[test]
fn recovery_after_tail_damage_resumes_durable_ingest() {
    let fx = build_fixture("resume");
    let last_start = fx.boundaries[STEPS - 1] as usize;
    let cut = last_start + (fx.log_bytes.len() - last_start) / 2;
    let (mut rec, report, log) = fx.recover_image("torn", &fx.log_bytes[..cut]);
    assert_eq!(report.replayed, STEPS - 1);
    assert_eq!(report.last_seq, STEPS as u64 - 1);
    let side1 = report.quarantine.clone().expect("first incident quarantined");
    let side1_bytes = fs::read(&side1).unwrap();

    // The torn record carried seq STEPS but never applied; the next append
    // re-issues it, keeping the log gapless.
    let (domain, delta) = scripted_delta(1, &rec);
    let outcome = rec.apply_delta(domain, &delta).unwrap();
    assert_eq!(outcome.wal_seq, Some(STEPS as u64));
    rec.wal_sync().unwrap();
    let want = snapshot(&mut rec);

    // The repaired-and-extended log is clean end to end…
    let repaired = fs::read(&log).unwrap();
    let scan = wal::scan_bytes(&repaired).unwrap();
    assert!(scan.tail.is_none());
    assert_eq!(scan.records.len(), STEPS);
    // …and recovering it (into a copy — the first engine still holds the
    // file open) reproduces the resumed state exactly.
    let (mut again, report, _) = fx.recover_image("torn-again", &repaired);
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.replayed, STEPS);
    assert_matches(&mut again, &want, "re-recovery of the resumed log");

    // Incident two: the re-issued record is torn as well — the truncation
    // offset is the same as incident one's, the sidecar must not be.
    drop(rec);
    fs::write(&log, &repaired[..repaired.len() - 3]).unwrap();
    let (mut rec2, report2) = Recommender::recover(&fx.base, &log).unwrap();
    assert_eq!(report2.replayed, STEPS - 1);
    let side2 = report2.quarantine.clone().expect("second incident quarantined");
    assert_ne!(side1, side2, "a second incident must get its own sidecar");
    assert!(side1.exists(), "the first sidecar must survive the second incident");
    assert_eq!(
        fs::read(&side1).unwrap(),
        side1_bytes,
        "the first incident's evidence must be preserved verbatim"
    );
    assert_eq!(
        fs::read(&side2).unwrap(),
        &repaired[last_start..repaired.len() - 3],
        "the second sidecar holds the second incident's torn bytes"
    );
    assert_matches(&mut rec2, &fx.snapshots[STEPS - 1], "second-incident recovery");
}

/// The retraction guarantees survive every recovery path: once the erasure
/// record is durably logged, no recovery — full-log replay, checkpoint +
/// empty log, or checkpoint alone — ever resurrects the user: the
/// embedding row stays zero, the neighbourhood stays empty, and the
/// delisted item never appears in any user's top-K. The erased user stays
/// a valid request target and is served a full-catalogue (minus delisted)
/// top-K from their zero row.
#[test]
fn erasure_and_delisting_are_never_resurrected_by_recovery() {
    let fx = build_fixture("erasure");
    let verify = |rec: &mut Recommender, context: &str| {
        let erased = rec.erased_users(DomainId::X).to_vec();
        assert!(!erased.is_empty(), "{context}: the script erases an X user");
        for &u in &erased {
            assert!(
                rec.seen_graph(DomainId::X).items_of(u as usize).is_empty(),
                "{context}: erased user {u} kept interactions"
            );
            assert!(
                rec.scorer().x_users.row(u as usize).iter().all(|&v| v == 0.0),
                "{context}: erased user {u}'s embedding row is not zero"
            );
        }
        let delisted = rec.delisted_items(DomainId::Y).to_vec();
        assert!(!delisted.is_empty(), "{context}: the script delists a Y item");
        let n_users = rec.seen_graph(DomainId::X).n_users();
        let catalogue = rec.catalogue_size(DomainId::Y);
        let mut out = Vec::new();
        for user in 0..n_users as u32 {
            let request = Request {
                direction: Direction::X_TO_Y,
                user,
                k: catalogue,
            };
            rec.recommend(&request, &mut out).unwrap();
            assert!(
                out.iter().all(|r| delisted.binary_search(&r.item).is_err()),
                "{context}: delisted item served to user {user}"
            );
            if erased.contains(&user) {
                // A tombstoned user has no history left to filter: the
                // full catalogue minus the delisted slots comes back.
                assert_eq!(
                    out.len(),
                    catalogue - delisted.len(),
                    "{context}: erased user {user} must get a full-catalogue top-K"
                );
            }
        }
    };

    // Full-log replay reproduces the tombstones.
    let (mut rec, report, _) = fx.recover_image("full", &fx.log_bytes);
    assert!(report.clean(), "{report:?}");
    verify(&mut rec, "full-log replay");
    drop(rec);

    // Compaction folds the tombstones into the checkpoint: both the
    // new-base + old-log and new-base + new-log crash windows restore them
    // (the checkpoint's model bytes predate the erasure — the lifecycle
    // sections are what re-zero the rows).
    let Fixture {
        dir,
        base,
        log,
        log_bytes,
        mut live,
        ..
    } = fx;
    live.compact().unwrap();
    let stage = |label: &str, log_image: &[u8]| -> (PathBuf, PathBuf) {
        let d = dir.join(label);
        fs::create_dir_all(&d).unwrap();
        let b = d.join("base.cdrb");
        let l = d.join("deltas.wal");
        fs::copy(&base, &b).unwrap();
        fs::write(&l, log_image).unwrap();
        (b, l)
    };
    let (b, l) = stage("checkpoint-old-log", &log_bytes);
    let (mut rec, report) = Recommender::recover(&b, &l).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.skipped, STEPS, "every record is already folded");
    verify(&mut rec, "checkpoint + already-folded log");
    let (b, l) = stage("checkpoint-new-log", &fs::read(&log).unwrap());
    let (mut rec, report) = Recommender::recover(&b, &l).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.replayed, 0);
    verify(&mut rec, "checkpoint + fresh log");
}
