//! Hyperparameter configuration of CDRIB.
//!
//! Defaults follow §IV-B3 of the paper where feasible on a CPU-scale
//! reproduction (the paper uses an embedding dimension of 128 and trains on
//! GPU; the default here is 64 and every experiment binary can override it).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Which regularizers are active — used by the ablation study (Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CdribVariant {
    /// The full model: cross-domain IB + in-domain IB + contrastive.
    Full,
    /// "w/o Con": drop the contrastive information regularizer.
    WithoutContrastive,
    /// "w/o In-IB&Con": additionally drop the in-domain IB regularizer,
    /// keeping only the cross-domain IB regularizer.
    WithoutInDomainAndContrastive,
}

impl CdribVariant {
    /// Whether the contrastive regularizer (Eq. 9/14) is applied.
    pub fn use_contrastive(&self) -> bool {
        matches!(self, CdribVariant::Full)
    }

    /// Whether the in-domain IB regularizer (Eq. 8) is applied.
    pub fn use_in_domain_ib(&self) -> bool {
        !matches!(self, CdribVariant::WithoutInDomainAndContrastive)
    }

    /// Display name used by the ablation table.
    pub fn label(&self) -> &'static str {
        match self {
            CdribVariant::Full => "CDRIB",
            CdribVariant::WithoutContrastive => "w/o Con",
            CdribVariant::WithoutInDomainAndContrastive => "w/o In-IB&Con",
        }
    }
}

/// Hyperparameters of the CDRIB model and its trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdribConfig {
    /// Embedding / latent dimension `F`.
    pub dim: usize,
    /// Number of VBGE propagation layers (paper sweeps 1-4, Fig. 6).
    pub layers: usize,
    /// Lagrangian multiplier `beta_1` of domain X (Eq. 16).
    pub beta1: f32,
    /// Lagrangian multiplier `beta_2` of domain Y (Eq. 16).
    pub beta2: f32,
    /// Weight of the contrastive regularizer.
    pub contrastive_weight: f32,
    /// Dropout rate on the propagated representations.
    pub dropout: f32,
    /// Negative slope of LeakyReLU (paper fixes 0.1).
    pub leaky_slope: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled L2 weight-decay strength.
    pub l2_weight: f32,
    /// Number of training epochs.
    pub epochs: usize,
    /// Number of edge mini-batches per epoch (each step re-encodes the full
    /// graph, so a handful of large batches is the efficient regime on CPU).
    pub batches_per_epoch: usize,
    /// Negative items sampled per positive interaction in the reconstruction
    /// terms.
    pub neg_ratio: usize,
    /// Maximum number of overlap users per contrastive batch.
    pub contrastive_batch: usize,
    /// Evaluate on the validation split every this many epochs (0 disables
    /// validation-based model selection).
    pub eval_every: usize,
    /// Early-stopping patience measured in evaluations without improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// Number of validation cases used for model selection (keeps the
    /// in-loop evaluation cheap); `None` uses all.
    pub max_val_cases: Option<usize>,
    /// Which regularizers are active (ablation switch).
    pub variant: CdribVariant,
    /// Apply the paper's LeakyReLU to the latent means (Eq. 3). Disabling it
    /// linearises the mean head (cf. the paper's footnote 2 on nonlinearities
    /// in graph recommenders) and usually speeds up convergence.
    pub nonlinear_mean: bool,
    /// Random seed controlling initialisation, sampling noise, dropout and
    /// negative sampling.
    pub seed: u64,
}

impl Default for CdribConfig {
    fn default() -> Self {
        CdribConfig {
            dim: 64,
            layers: 2,
            beta1: 1.0,
            beta2: 1.0,
            contrastive_weight: 1.0,
            dropout: 0.1,
            leaky_slope: 0.1,
            learning_rate: 0.02,
            l2_weight: 1e-4,
            epochs: 100,
            batches_per_epoch: 2,
            neg_ratio: 1,
            contrastive_batch: 512,
            eval_every: 10,
            patience: 3,
            max_val_cases: Some(500),
            variant: CdribVariant::Full,
            nonlinear_mean: false,
            seed: 2022,
        }
    }
}

impl CdribConfig {
    /// A fast configuration for unit/integration tests.
    pub fn fast_test() -> Self {
        CdribConfig {
            dim: 16,
            layers: 1,
            epochs: 15,
            batches_per_epoch: 1,
            eval_every: 0,
            patience: 0,
            max_val_cases: Some(100),
            ..CdribConfig::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(CoreError::InvalidConfig {
                field: "dim",
                detail: "embedding dimension must be positive".into(),
            });
        }
        if self.layers == 0 || self.layers > 8 {
            return Err(CoreError::InvalidConfig {
                field: "layers",
                detail: format!("layer count must be in 1..=8, got {}", self.layers),
            });
        }
        if self.beta1 < 0.0 || self.beta2 < 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "beta",
                detail: "Lagrangian multipliers must be non-negative".into(),
            });
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(CoreError::InvalidConfig {
                field: "dropout",
                detail: format!("dropout must lie in [0,1), got {}", self.dropout),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "learning_rate",
                detail: "learning rate must be positive".into(),
            });
        }
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                field: "epochs",
                detail: "must train for at least one epoch".into(),
            });
        }
        if self.batches_per_epoch == 0 {
            return Err(CoreError::InvalidConfig {
                field: "batches_per_epoch",
                detail: "must be at least 1".into(),
            });
        }
        if self.neg_ratio == 0 {
            return Err(CoreError::InvalidConfig {
                field: "neg_ratio",
                detail: "must sample at least one negative per positive".into(),
            });
        }
        if self.contrastive_batch == 0 {
            return Err(CoreError::InvalidConfig {
                field: "contrastive_batch",
                detail: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Returns a copy with a different seed (used for the 5-run averages).
    pub fn with_seed(&self, seed: u64) -> Self {
        CdribConfig { seed, ..self.clone() }
    }

    /// Returns a copy with a different variant (used by the ablation study).
    pub fn with_variant(&self, variant: CdribVariant) -> Self {
        CdribConfig {
            variant,
            ..self.clone()
        }
    }

    /// Returns a copy with both betas set to the same value (Fig. 5 sweep).
    pub fn with_beta(&self, beta: f32) -> Self {
        CdribConfig {
            beta1: beta,
            beta2: beta,
            ..self.clone()
        }
    }

    /// Returns a copy with a different number of VBGE layers (Fig. 6 sweep).
    pub fn with_layers(&self, layers: usize) -> Self {
        CdribConfig { layers, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        CdribConfig::default().validate().unwrap();
        CdribConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = CdribConfig::default();
        assert!(CdribConfig { dim: 0, ..base.clone() }.validate().is_err());
        assert!(CdribConfig {
            layers: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            layers: 9,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            beta1: -1.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            dropout: 1.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            learning_rate: 0.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            epochs: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            batches_per_epoch: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            neg_ratio: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(CdribConfig {
            contrastive_batch: 0,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn variant_switches() {
        assert!(CdribVariant::Full.use_contrastive());
        assert!(CdribVariant::Full.use_in_domain_ib());
        assert!(!CdribVariant::WithoutContrastive.use_contrastive());
        assert!(CdribVariant::WithoutContrastive.use_in_domain_ib());
        assert!(!CdribVariant::WithoutInDomainAndContrastive.use_contrastive());
        assert!(!CdribVariant::WithoutInDomainAndContrastive.use_in_domain_ib());
        assert_eq!(CdribVariant::Full.label(), "CDRIB");
        assert_eq!(CdribVariant::WithoutContrastive.label(), "w/o Con");
    }

    #[test]
    fn builder_helpers() {
        let c = CdribConfig::default();
        assert_eq!(c.with_seed(9).seed, 9);
        assert_eq!(c.with_beta(1.5).beta2, 1.5);
        assert_eq!(c.with_layers(4).layers, 4);
        assert_eq!(
            c.with_variant(CdribVariant::WithoutContrastive).variant,
            CdribVariant::WithoutContrastive
        );
    }
}
