//! Single-domain variational graph baseline ("VBGE" row of the tables).
//!
//! The paper's ablation baseline "VBGE" keeps the variational bipartite graph
//! encoder but replaces all cross-domain regularizers with the plain VGAE
//! objective (reconstruction + KL against the standard-normal prior) on a
//! single (merged) domain. This module reuses the encoder from `cdrib-core`
//! and trains exactly that objective.

use crate::common::BaselineOpts;
use crate::mf::MfModel;
use cdrib_core::{encode_mean, ForwardNoise, MeanActivation, VbgeEncoder};
use cdrib_data::{DataError, EdgeBatcher, EpochBatches, Result};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{Adam, Optimizer, ParamSet, Tape, Tensor};

/// Weight of the KL terms relative to the averaged reconstruction loss
/// (same scaling rationale as in `cdrib-core`).
const KL_WEIGHT: f32 = 0.1;

/// Trains a single-domain VGAE with VBGE encoders and returns the mean
/// embeddings.
pub fn train_vgae(graph: &BipartiteGraph, opts: &BaselineOpts, layers: usize) -> Result<MfModel> {
    if graph.n_edges() == 0 {
        return Err(DataError::EmptyDataset { stage: "vgae training" });
    }
    let mut rng = component_rng(opts.seed, "vgae-init");
    let mut params = ParamSet::new();
    let user_emb = params
        .add(
            "user_emb",
            cdrib_tensor::init::embedding_normal(&mut rng, graph.n_users(), opts.dim, 0.1),
        )
        .expect("fresh parameter set");
    let item_emb = params
        .add(
            "item_emb",
            cdrib_tensor::init::embedding_normal(&mut rng, graph.n_items(), opts.dim, 0.1),
        )
        .expect("fresh parameter set");
    let user_enc = VbgeEncoder::with_mean_activation(
        &mut params,
        &mut rng,
        "user_vbge",
        opts.dim,
        layers,
        0.1,
        MeanActivation::Identity,
    )
    .map_err(|e| DataError::InvalidConfig {
        field: "vgae",
        detail: e.to_string(),
    })?;
    let item_enc = VbgeEncoder::with_mean_activation(
        &mut params,
        &mut rng,
        "item_vbge",
        opts.dim,
        layers,
        0.1,
        MeanActivation::Identity,
    )
    .map_err(|e| DataError::InvalidConfig {
        field: "vgae",
        detail: e.to_string(),
    })?;
    let norm_a = graph.norm_adjacency();
    let norm_a_t = graph.norm_adjacency_transpose();

    let mut opt = Adam::new(opts.learning_rate.min(0.02), 0.9, 0.999, 1e-8, opts.l2);
    let mut rng_train = component_rng(opts.seed, "vgae-train");
    let batch_size = graph.n_edges().div_ceil(2).max(1);
    let batcher = EdgeBatcher::new(batch_size, opts.neg_ratio)?;
    let mut tape = Tape::new();
    let mut epoch_batches = EpochBatches::new();
    for _epoch in 0..opts.epochs {
        batcher.epoch_into(graph, &mut rng_train, &mut epoch_batches)?;
        for batch in &epoch_batches {
            params.zero_grad();
            tape.reset();
            let ue = tape.param(&params, user_emb);
            let ie = tape.param(&params, item_emb);
            let uo = user_enc
                .forward(
                    &mut tape,
                    &params,
                    ue,
                    &norm_a_t,
                    &norm_a,
                    Some(ForwardNoise {
                        dropout: 0.1,
                        rng: &mut rng_train,
                    }),
                )
                .map_err(to_data_err)?;
            let io = item_enc
                .forward(
                    &mut tape,
                    &params,
                    ie,
                    &norm_a,
                    &norm_a_t,
                    Some(ForwardNoise {
                        dropout: 0.1,
                        rng: &mut rng_train,
                    }),
                )
                .map_err(to_data_err)?;
            let mut users: Vec<usize> = batch.users.iter().map(|&u| u as usize).collect();
            users.extend(batch.neg_users.iter().map(|&u| u as usize));
            let mut items: Vec<usize> = batch.pos_items.iter().map(|&i| i as usize).collect();
            items.extend(batch.neg_items.iter().map(|&i| i as usize));
            let mut labels = vec![1.0f32; batch.users.len()];
            labels.extend(vec![0.0f32; batch.neg_users.len()]);
            let zu = tape.gather_rows(uo.z, &users).map_err(to_data_err)?;
            let zi = tape.gather_rows(io.z, &items).map_err(to_data_err)?;
            let logits = tape.rowwise_dot(zu, zi).map_err(to_data_err)?;
            let labels = Tensor::from_vec(labels.len(), 1, labels).map_err(to_data_err)?;
            let rec = tape.bce_with_logits(logits, labels).map_err(to_data_err)?;
            let klu = tape.kl_std_normal(uo.mu, uo.sigma).map_err(to_data_err)?;
            let kli = tape.kl_std_normal(io.mu, io.sigma).map_err(to_data_err)?;
            let kl = tape.add(klu, kli).map_err(to_data_err)?;
            let kl = tape.scale(kl, KL_WEIGHT).map_err(to_data_err)?;
            let loss = tape.add(rec, kl).map_err(to_data_err)?;
            tape.backward(loss, &mut params).map_err(to_data_err)?;
            opt.step(&mut params).map_err(to_data_err)?;
        }
    }

    let users = encode_mean(&user_enc, &params, params.value(user_emb), &norm_a_t, &norm_a).map_err(to_data_err)?;
    let items = encode_mean(&item_enc, &params, params.value(item_emb), &norm_a, &norm_a_t).map_err(to_data_err)?;
    Ok(MfModel { users, items })
}

fn to_data_err<E: std::fmt::Display>(e: E) -> DataError {
    DataError::InvalidConfig {
        field: "vgae",
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgae_learns_and_exports_mean_embeddings() {
        let mut edges = Vec::new();
        for u in 0..6usize {
            for i in 0..6usize {
                if (u < 3) == (i < 3) && (u + i) % 3 != 2 {
                    edges.push((u, i));
                }
            }
        }
        let g = BipartiteGraph::new(6, 6, &edges).unwrap();
        let opts = BaselineOpts {
            dim: 8,
            epochs: 120,
            learning_rate: 0.02,
            ..BaselineOpts::default()
        };
        let model = train_vgae(&g, &opts, 1).unwrap();
        assert_eq!(model.users.shape(), (6, 8));
        assert!(model.users.all_finite());
        let score = |u: usize, v: usize| -> f32 {
            model
                .users
                .row(u)
                .iter()
                .zip(model.items.row(v).iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        // within-block scores should beat cross-block scores on average
        let mut within = 0.0;
        let mut across = 0.0;
        let mut nw = 0;
        let mut na = 0;
        for u in 0..6 {
            for i in 0..6 {
                if (u < 3) == (i < 3) {
                    within += score(u, i);
                    nw += 1;
                } else {
                    across += score(u, i);
                    na += 1;
                }
            }
        }
        assert!(within / nw as f32 > across / na as f32);
    }

    #[test]
    fn vgae_rejects_empty_graph() {
        let empty = BipartiteGraph::new(2, 2, &[]).unwrap();
        assert!(train_vgae(&empty, &BaselineOpts::fast_test(), 1).is_err());
    }
}
