//! # cdrib-tensor
//!
//! The numerical substrate of the CDRIB reproduction: dense row-major `f32`
//! tensors, CSR sparse matrices, a reverse-mode autodiff [`Tape`], small
//! neural-network building blocks and first-order optimizers.
//!
//! The crate deliberately implements only what the paper's computation graph
//! needs — it is not a general deep-learning framework — but each piece is
//! complete, tested (including finite-difference gradient checks) and
//! deterministic given a seed.
//!
//! ## Quick example
//!
//! ```
//! use cdrib_tensor::{ParamSet, Tape, Tensor, Adam, Optimizer, rng};
//!
//! let mut rng = rng::component_rng(0, "demo");
//! let mut params = ParamSet::new();
//! let w = params.add("w", rng::normal_tensor(&mut rng, 2, 1, 0.1)).unwrap();
//! let x = rng::normal_tensor(&mut rng, 8, 2, 1.0);
//! let y = Tensor::ones(8, 1);
//! let mut opt = Adam::with_defaults(0.1);
//! for _ in 0..50 {
//!     params.zero_grad();
//!     let mut tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let wv = tape.param(&params, w);
//!     let pred = tape.matmul(xv, wv).unwrap();
//!     let loss = tape.bce_with_logits(pred, y.clone()).unwrap();
//!     tape.backward(loss, &mut params).unwrap();
//!     opt.step(&mut params).unwrap();
//! }
//! assert!(params.all_finite());
//! ```

#![warn(missing_docs)]

#[cfg(feature = "alloc-track")]
pub mod alloc_track;
pub mod artifact;
pub mod error;
pub mod func;
pub mod init;
pub mod kernels;
pub mod mmap;
pub mod nn;
pub mod optim;
pub mod params;
pub mod pool;
pub mod quant;
pub mod rng;
pub mod sparse;
pub mod storage;
pub mod tape;
pub mod tensor;

pub use artifact::ArtifactError;
pub use error::{Result, TensorError};
pub use func::FuncCtx;
pub use nn::{Activation, Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamSet};
pub use pool::{BufferPool, PoolStats};
pub use quant::QuantizedTable;
pub use sparse::CsrMatrix;
pub use storage::TableStorage;
pub use tape::{sigmoid_scalar, softplus_scalar, Tape, Var};
pub use tensor::Tensor;
