//! The Variational Bipartite Graph Encoder (VBGE, §III-B).
//!
//! The VBGE produces Gaussian latent variables for one entity type (users or
//! items) of one domain in two steps per propagation layer:
//!
//! 1. **Interim representations** (Eq. 2): the entity's current
//!    representations are pushed across the bipartite graph to the *other*
//!    side (`Norm(A^T) U W`), so each interim row aggregates information from
//!    its homogeneous even-hop neighbours.
//! 2. **Back propagation + variational heads** (Eq. 3): the interim
//!    representations are pulled back to the entity side (`Norm(A) Û Ŵ`),
//!    concatenated with the raw embeddings, and mapped to the mean and
//!    standard deviation of the latent Gaussian. Latents are sampled with the
//!    reparameterisation trick (Eq. 4).
//!
//! Following the paper's setting (§IV-B3), multiple propagation layers can be
//! stacked and their outputs are concatenated before the variational heads.

use crate::error::{CoreError, Result};
use cdrib_tensor::rng::{fill_dropout_mask, fill_normal};
use cdrib_tensor::{Activation, CsrMatrix, FuncCtx, Linear, ParamSet, Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One propagation layer (the pair of weight matrices of Eq. 2 / Eq. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PropagationLayer {
    /// `W` of Eq. 2: applied on the push to the other side of the graph.
    push: Linear,
    /// `Ŵ` of Eq. 3: applied on the pull back to the entity side.
    pull: Linear,
}

/// Activation applied to the mean head of the VBGE.
///
/// The paper applies LeakyReLU to the mean (Eq. 3) but notes (footnote 2)
/// that nonlinearities in graph recommenders can hurt; the identity variant
/// is exposed for that ablation and trains noticeably faster on the small
/// synthetic scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeanActivation {
    /// `mu = LeakyReLU(...)` exactly as written in Eq. (3).
    LeakyRelu,
    /// `mu = ...` without a nonlinearity (LightGCN-style linearisation).
    Identity,
}

/// The VBGE for one entity type of one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VbgeEncoder {
    layers: Vec<PropagationLayer>,
    mu_head: Linear,
    sigma_head: Linear,
    dim: usize,
    leaky_slope: f32,
    mean_activation: MeanActivation,
}

/// The latent variables produced by one VBGE forward pass.
#[derive(Debug, Clone, Copy)]
pub struct VbgeOutput {
    /// Mean of the latent Gaussian (`n x F`).
    pub mu: Var,
    /// Standard deviation of the latent Gaussian (`n x F`).
    pub sigma: Var,
    /// Sampled latent variables (equal to `mu` when no noise is supplied).
    pub z: Var,
}

/// Optional stochastic elements of a training-mode forward pass.
pub struct ForwardNoise<'a> {
    /// Dropout rate applied to each layer output (0 disables dropout).
    pub dropout: f32,
    /// RNG driving dropout masks and reparameterisation noise.
    pub rng: &'a mut StdRng,
}

impl VbgeEncoder {
    /// Registers the encoder's parameters.
    ///
    /// `dim` is the embedding dimension `F`; `layers` the number of
    /// propagation layers whose outputs are concatenated before the heads.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        layers: usize,
        leaky_slope: f32,
    ) -> Result<Self> {
        Self::with_mean_activation(params, rng, name, dim, layers, leaky_slope, MeanActivation::LeakyRelu)
    }

    /// Same as [`VbgeEncoder::new`] with an explicit mean-head activation.
    #[allow(clippy::too_many_arguments)]
    pub fn with_mean_activation(
        params: &mut ParamSet,
        rng: &mut StdRng,
        name: &str,
        dim: usize,
        layers: usize,
        leaky_slope: f32,
        mean_activation: MeanActivation,
    ) -> Result<Self> {
        let mut prop = Vec::with_capacity(layers);
        for l in 0..layers {
            let push = Linear::new(
                params,
                rng,
                &format!("{name}.layer{l}.push"),
                dim,
                dim,
                false,
                Activation::Identity,
            )?;
            let pull = Linear::new(
                params,
                rng,
                &format!("{name}.layer{l}.pull"),
                dim,
                dim,
                false,
                Activation::Identity,
            )?;
            prop.push(PropagationLayer { push, pull });
        }
        let head_in = dim * (layers + 1);
        let mu_head = Linear::new(
            params,
            rng,
            &format!("{name}.mu"),
            head_in,
            dim,
            true,
            Activation::Identity,
        )?;
        let sigma_head = Linear::new(
            params,
            rng,
            &format!("{name}.sigma"),
            head_in,
            dim,
            true,
            Activation::Identity,
        )?;
        Ok(VbgeEncoder {
            layers: prop,
            mu_head,
            sigma_head,
            dim,
            leaky_slope,
            mean_activation,
        })
    }

    /// Latent dimension `F`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of propagation layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the encoder.
    ///
    /// * `embeddings` — the entity's embedding rows (`n x F`).
    /// * `to_other` — normalised adjacency mapping entity rows to the other
    ///   side of the bipartite graph (for users: `Norm(A^T)`, `|V| x |U|`).
    /// * `to_self` — normalised adjacency mapping back (for users:
    ///   `Norm(A)`, `|U| x |V|`).
    /// * `noise` — when `Some`, training mode: applies dropout and samples
    ///   `z = mu + sigma ⊙ eps`; when `None`, inference mode with `z = mu`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        embeddings: Var,
        to_other: &Arc<CsrMatrix>,
        to_self: &Arc<CsrMatrix>,
        mut noise: Option<ForwardNoise<'_>>,
    ) -> Result<VbgeOutput> {
        let n = tape.value(embeddings)?.rows();
        let mut h = embeddings;
        let mut concat: Option<Var> = None;
        for layer in &self.layers {
            // Eq. 2: push to the other side and aggregate homogeneous info.
            let pushed = tape.spmm(to_other, h)?;
            let pushed = layer.push.forward(tape, params, pushed)?;
            let interim = tape.leaky_relu(pushed, self.leaky_slope)?;
            // Eq. 3 (inner part): pull back to the entity side.
            let pulled = tape.spmm(to_self, interim)?;
            let pulled = layer.pull.forward(tape, params, pulled)?;
            let mut back = tape.leaky_relu(pulled, self.leaky_slope)?;
            if let Some(fwd) = noise.as_mut() {
                if fwd.dropout > 0.0 {
                    // The mask lives in a pooled scratch buffer, so the same
                    // storage is reused every step once the tape is warm.
                    let mut mask = tape.scratch(n, self.dim);
                    fill_dropout_mask(fwd.rng, mask.as_mut_slice(), fwd.dropout);
                    back = tape.dropout(back, mask)?;
                }
            }
            concat = Some(match concat {
                None => back,
                Some(prev) => tape.concat_cols(prev, back)?,
            });
            h = back;
        }
        // Concatenate the stacked layer outputs with the raw embeddings
        // (the `⊕ U^X` of Eq. 3).
        let combined = match concat {
            Some(c) => tape.concat_cols(c, embeddings)?,
            None => embeddings,
        };
        let mu_lin = self.mu_head.forward(tape, params, combined)?;
        let mu = match self.mean_activation {
            MeanActivation::LeakyRelu => tape.leaky_relu(mu_lin, self.leaky_slope)?,
            MeanActivation::Identity => mu_lin,
        };
        let sigma_lin = self.sigma_head.forward(tape, params, combined)?;
        let sigma = tape.softplus(sigma_lin)?;
        let z = match noise.as_mut() {
            Some(fwd) => {
                let mut eps = tape.scratch(n, self.dim);
                fill_normal(fwd.rng, eps.as_mut_slice(), 1.0);
                let eps = tape.constant(eps);
                let scaled = tape.mul(sigma, eps)?;
                tape.add(mu, scaled)?
            }
            None => mu,
        };
        Ok(VbgeOutput { mu, sigma, z })
    }
}

impl VbgeEncoder {
    /// Tape-free inference forward: computes the latent **mean** path
    /// (Eq. 2-3 with `z = mu`, no dropout, no sigma head) straight through
    /// the shared functional kernel layer ([`cdrib_tensor::func`]).
    ///
    /// Because the tape's forward ops route through the *same* `func`
    /// computations, the result is bitwise identical to the `mu` recorded by
    /// [`VbgeEncoder::forward`] in inference mode — that equality is pinned
    /// by the `inference_matches_tape` tests here and in
    /// `tests/artifact_roundtrip.rs`. All intermediates are drawn from and
    /// recycled into `ctx`'s pool, so warm calls are allocation-free.
    pub fn forward_mean(
        &self,
        ctx: &mut FuncCtx,
        params: &ParamSet,
        embeddings: &Tensor,
        to_other: &CsrMatrix,
        to_self: &CsrMatrix,
    ) -> Result<Tensor> {
        // `last` is the most recent layer output (the tape's `h`); `acc`
        // accumulates the concatenation of all *earlier* layer outputs in
        // the same left-to-right order as the tape.
        let mut last: Option<Tensor> = None;
        let mut acc: Option<Tensor> = None;
        for layer in &self.layers {
            let h: &Tensor = last.as_ref().unwrap_or(embeddings);
            // Eq. 2: push to the other side and aggregate homogeneous info.
            let pushed = ctx.spmm(to_other, h)?;
            let pushed_lin = layer.push.forward_infer(ctx, params, &pushed)?;
            ctx.recycle(pushed);
            let interim = ctx.leaky_relu(&pushed_lin, self.leaky_slope);
            ctx.recycle(pushed_lin);
            // Eq. 3 (inner part): pull back to the entity side.
            let pulled = ctx.spmm(to_self, &interim)?;
            ctx.recycle(interim);
            let pulled_lin = layer.pull.forward_infer(ctx, params, &pulled)?;
            ctx.recycle(pulled);
            let back = ctx.leaky_relu(&pulled_lin, self.leaky_slope);
            ctx.recycle(pulled_lin);
            if let Some(prev) = last.take() {
                acc = Some(match acc.take() {
                    None => prev,
                    Some(a) => {
                        let joined = ctx.concat_cols(&a, &prev)?;
                        ctx.recycle(a);
                        ctx.recycle(prev);
                        joined
                    }
                });
            }
            last = Some(back);
        }
        // Concatenate the stacked layer outputs with the raw embeddings
        // (the `⊕ U^X` of Eq. 3).
        let combined = match (acc, last) {
            (Some(a), Some(l)) => {
                let layers_cat = ctx.concat_cols(&a, &l)?;
                ctx.recycle(a);
                ctx.recycle(l);
                let combined = ctx.concat_cols(&layers_cat, embeddings)?;
                ctx.recycle(layers_cat);
                combined
            }
            (None, Some(l)) => {
                let combined = ctx.concat_cols(&l, embeddings)?;
                ctx.recycle(l);
                combined
            }
            // Zero propagation layers: the heads read the raw embeddings.
            (_, None) => {
                let mut copy = ctx.take(embeddings.rows(), embeddings.cols());
                copy.copy_from(embeddings);
                copy
            }
        };
        let mu_lin = self.mu_head.forward_infer(ctx, params, &combined)?;
        ctx.recycle(combined);
        Ok(match self.mean_activation {
            MeanActivation::LeakyRelu => {
                let mu = ctx.leaky_relu(&mu_lin, self.leaky_slope);
                ctx.recycle(mu_lin);
                mu
            }
            MeanActivation::Identity => mu_lin,
        })
    }
}

/// Cached per-layer intermediates of one encoder's deterministic mean path,
/// the substrate of incremental re-encoding.
///
/// The mean path of [`VbgeEncoder::forward_mean`] is a chain of row-local
/// stages: per layer an *interim* table on the other side of the bipartite
/// graph (Eq. 2) and a *back* table on the entity side (Eq. 3), then the
/// final mean table from the concatenation head. When a graph delta lands,
/// only the rows whose inputs changed need recomputing — but recomputing row
/// `r` of a stage needs the **full previous-stage table** (its sparse row
/// mixes clean neighbours too), so the cache keeps every stage materialised.
///
/// Filled by [`VbgeEncoder::forward_mean_cached`]; patched in place by
/// [`VbgeEncoder::reencode_mean_rows`]. After any sequence of patches the
/// cache is bitwise identical to a from-scratch
/// [`VbgeEncoder::forward_mean_cached`] on the post-delta graph
/// (`tests/delta_parity.rs`).
#[derive(Debug)]
pub struct MeanCache {
    /// Interim (other-side) tables, one per propagation layer.
    interims: Vec<Tensor>,
    /// Back (entity-side) tables, one per propagation layer.
    backs: Vec<Tensor>,
    /// The final latent mean table — what serving reads.
    mu: Tensor,
    ready: bool,
}

impl Default for MeanCache {
    fn default() -> Self {
        MeanCache::new()
    }
}

impl MeanCache {
    /// Empty cache; fill it with [`VbgeEncoder::forward_mean_cached`].
    pub fn new() -> Self {
        MeanCache {
            interims: Vec::new(),
            backs: Vec::new(),
            mu: Tensor::zeros(0, 0),
            ready: false,
        }
    }

    /// Whether the cache holds a consistent forward pass.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The cached latent mean table.
    pub fn mu(&self) -> &Tensor {
        &self.mu
    }
}

/// Reusable dirty-set storage for [`VbgeEncoder::reencode_mean_rows`].
///
/// Membership is tracked with mark-stamped arrays instead of hash sets: a
/// row is in the current set iff its stamp equals the current mark, so
/// "clear" is a counter bump and steady-state delta batches never touch the
/// allocator (`tests/alloc_regression.rs`). The stamp arrays grow with the
/// entity counts; the dirty lists keep their capacity across batches.
#[derive(Debug, Default)]
pub struct DirtyScratch {
    self_stamp: Vec<u32>,
    other_stamp: Vec<u32>,
    mu_stamp: Vec<u32>,
    mark: u32,
    dirty_self: Vec<u32>,
    next_self: Vec<u32>,
    dirty_other: Vec<u32>,
    dirty_mu: Vec<u32>,
}

impl DirtyScratch {
    /// Empty scratch (grows on first use).
    pub fn new() -> Self {
        DirtyScratch::default()
    }

    /// The entity rows the last [`VbgeEncoder::reencode_mean_rows`] call
    /// recomputed in the cached mean table (sorted ascending). The serving
    /// layer patches exactly these rows into its frozen tables.
    pub fn dirty_mu(&self) -> &[u32] {
        &self.dirty_mu
    }

    /// Bumps the mark that opens a fresh membership set. On the (practically
    /// unreachable) u32 wrap, every stamp array is cleared so stale stamps
    /// can never collide with a recycled mark.
    fn next_mark(&mut self) -> u32 {
        self.mark = self.mark.wrapping_add(1);
        if self.mark == 0 {
            self.self_stamp.fill(0);
            self.other_stamp.fill(0);
            self.mu_stamp.fill(0);
            self.mark = 1;
        }
        self.mark
    }
}

/// Copies `src` row `i` over `dst` row `rows[i]` for every selected row.
fn scatter_rows(src: &Tensor, rows: &[u32], dst: &mut Tensor) {
    debug_assert_eq!(src.rows(), rows.len());
    debug_assert_eq!(src.cols(), dst.cols());
    for (i, &r) in rows.iter().enumerate() {
        dst.row_mut(r as usize).copy_from_slice(src.row(i));
    }
}

impl VbgeEncoder {
    /// Runs the full mean path like [`VbgeEncoder::forward_mean`] but
    /// materialises every stage into `cache` (replacing its contents). The
    /// cached `mu` is bitwise identical to [`VbgeEncoder::forward_mean`]'s
    /// result — the stages run the same kernels on the same operands in the
    /// same order; the cache only keeps what `forward_mean` recycles.
    pub fn forward_mean_cached(
        &self,
        ctx: &mut FuncCtx,
        params: &ParamSet,
        embeddings: &Tensor,
        to_other: &CsrMatrix,
        to_self: &CsrMatrix,
        cache: &mut MeanCache,
    ) -> Result<()> {
        cache.ready = false;
        for t in cache.interims.drain(..) {
            ctx.recycle(t);
        }
        for t in cache.backs.drain(..) {
            ctx.recycle(t);
        }
        // `h` is the entity-side input of the next layer (a copy of the last
        // `back`, since the cache owns the stage tensors).
        let mut h_owned: Option<Tensor> = None;
        for layer in &self.layers {
            let h: &Tensor = h_owned.as_ref().unwrap_or(embeddings);
            let pushed = ctx.spmm(to_other, h)?;
            let pushed_lin = layer.push.forward_infer(ctx, params, &pushed)?;
            ctx.recycle(pushed);
            let interim = ctx.leaky_relu(&pushed_lin, self.leaky_slope);
            ctx.recycle(pushed_lin);
            let pulled = ctx.spmm(to_self, &interim)?;
            let pulled_lin = layer.pull.forward_infer(ctx, params, &pulled)?;
            ctx.recycle(pulled);
            let back = ctx.leaky_relu(&pulled_lin, self.leaky_slope);
            ctx.recycle(pulled_lin);
            cache.interims.push(interim);
            if let Some(prev) = h_owned.take() {
                ctx.recycle(prev);
            }
            let mut next_h = ctx.take(back.rows(), back.cols());
            next_h.copy_from(&back);
            h_owned = Some(next_h);
            cache.backs.push(back);
        }
        if let Some(h) = h_owned.take() {
            ctx.recycle(h);
        }
        // Head input: [back_0 | ... | back_{L-1} | embeddings] — the same
        // content `forward_mean` assembles incrementally.
        let mut combined = ctx.take(embeddings.rows(), self.dim * (self.layers.len() + 1));
        for r in 0..embeddings.rows() {
            let dst = combined.row_mut(r);
            let mut off = 0;
            for back in &cache.backs {
                dst[off..off + self.dim].copy_from_slice(back.row(r));
                off += self.dim;
            }
            dst[off..].copy_from_slice(embeddings.row(r));
        }
        let mu_lin = self.mu_head.forward_infer(ctx, params, &combined)?;
        ctx.recycle(combined);
        let mu = match self.mean_activation {
            MeanActivation::LeakyRelu => {
                let mu = ctx.leaky_relu(&mu_lin, self.leaky_slope);
                ctx.recycle(mu_lin);
                mu
            }
            MeanActivation::Identity => mu_lin,
        };
        if !cache.mu.is_empty() {
            let old = std::mem::replace(&mut cache.mu, mu);
            ctx.recycle(old);
        } else {
            cache.mu = mu;
        }
        cache.ready = true;
        Ok(())
    }

    /// Incrementally patches a [`MeanCache`] after a graph delta, recomputing
    /// **only** the rows whose inputs changed.
    ///
    /// `to_other` / `to_self` are the **post-delta** normalised adjacencies;
    /// `embeddings` the post-delta (row-extended) entity embeddings.
    /// `touched_self` / `touched_other` are the rows whose adjacency rows the
    /// delta addressed (from `cdrib_graph::DeltaEffect`, new entities
    /// included); `old_self_rows` / `old_other_rows` the entity counts before
    /// the delta.
    ///
    /// Dirtiness propagates through the stage chain exactly as data does:
    /// an interim row is dirty when its `to_other` row changed or any of its
    /// neighbours' previous-stage rows are dirty; a back row when its
    /// `to_self` row changed or any neighbouring interim row is dirty; the
    /// mean row when any of its layer rows is dirty (or the entity is new).
    /// Each dirty row re-runs the same per-row kernels as the full pass
    /// ([`cdrib_tensor::kernels::spmm_rows`], the dense kernels on gathered
    /// rows), so the patched cache is **bitwise identical** to a full
    /// rebuild. Warm calls are allocation-free.
    #[allow(clippy::too_many_arguments)]
    pub fn reencode_mean_rows(
        &self,
        ctx: &mut FuncCtx,
        params: &ParamSet,
        embeddings: &Tensor,
        to_other: &CsrMatrix,
        to_self: &CsrMatrix,
        touched_self: &[u32],
        touched_other: &[u32],
        old_self_rows: usize,
        old_other_rows: usize,
        cache: &mut MeanCache,
        scratch: &mut DirtyScratch,
    ) -> Result<()> {
        if !cache.ready {
            return Err(CoreError::InvalidDelta {
                detail: "mean cache not initialised; run forward_mean_cached first".into(),
            });
        }
        let self_rows = to_self.rows();
        let other_rows = to_other.rows();
        if embeddings.rows() != self_rows || to_other.cols() != self_rows || to_self.cols() != other_rows {
            return Err(CoreError::InvalidDelta {
                detail: format!(
                    "inconsistent post-delta shapes: embeddings {} rows, to_self {}x{}, to_other {}x{}",
                    embeddings.rows(),
                    to_self.rows(),
                    to_self.cols(),
                    to_other.rows(),
                    to_other.cols()
                ),
            });
        }
        if old_self_rows > self_rows || old_other_rows > other_rows {
            return Err(CoreError::InvalidDelta {
                detail: "deltas are additive; entity counts cannot shrink".into(),
            });
        }
        // Grow the cached stages (new rows are recomputed below) and the
        // stamp arrays (new rows stamped 0 = in no set yet).
        for t in cache.interims.iter_mut() {
            t.resize_rows(other_rows);
        }
        for t in cache.backs.iter_mut() {
            t.resize_rows(self_rows);
        }
        cache.mu.resize_rows(self_rows);
        scratch.self_stamp.resize(self_rows, 0);
        scratch.other_stamp.resize(other_rows, 0);
        scratch.mu_stamp.resize(self_rows, 0);

        // Layer-0 entity input is the raw embedding table: dirty only for
        // new rows. The mean set starts with those too (the `⊕ U` concat
        // reads the embedding row even with zero propagation layers).
        let mu_mark = scratch.next_mark();
        scratch.dirty_mu.clear();
        scratch.dirty_self.clear();
        for r in old_self_rows as u32..self_rows as u32 {
            scratch.dirty_self.push(r);
            scratch.mu_stamp[r as usize] = mu_mark;
            scratch.dirty_mu.push(r);
        }
        let MeanCache {
            interims, backs, mu, ..
        } = cache;
        for (l, layer) in self.layers.iter().enumerate() {
            // Interim side: rows whose normalised adjacency row changed, or
            // with a dirty entity-side neighbour.
            let mark = scratch.next_mark();
            scratch.dirty_other.clear();
            for &j in touched_other {
                if scratch.other_stamp[j as usize] != mark {
                    scratch.other_stamp[j as usize] = mark;
                    scratch.dirty_other.push(j);
                }
            }
            for &u in &scratch.dirty_self {
                for &j in to_self.row_indices(u as usize) {
                    if scratch.other_stamp[j as usize] != mark {
                        scratch.other_stamp[j as usize] = mark;
                        scratch.dirty_other.push(j);
                    }
                }
            }
            scratch.dirty_other.sort_unstable();
            if !scratch.dirty_other.is_empty() {
                let h: &Tensor = if l == 0 { embeddings } else { &backs[l - 1] };
                let pushed = ctx.spmm_rows(to_other, &scratch.dirty_other, h)?;
                let lin = layer.push.forward_infer(ctx, params, &pushed)?;
                ctx.recycle(pushed);
                let act = ctx.leaky_relu(&lin, self.leaky_slope);
                ctx.recycle(lin);
                scatter_rows(&act, &scratch.dirty_other, &mut interims[l]);
                ctx.recycle(act);
            }
            // Back side: rows whose adjacency row changed, or with a dirty
            // interim neighbour.
            let mark = scratch.next_mark();
            scratch.next_self.clear();
            for &u in touched_self {
                if scratch.self_stamp[u as usize] != mark {
                    scratch.self_stamp[u as usize] = mark;
                    scratch.next_self.push(u);
                }
            }
            for &j in &scratch.dirty_other {
                for &u in to_other.row_indices(j as usize) {
                    if scratch.self_stamp[u as usize] != mark {
                        scratch.self_stamp[u as usize] = mark;
                        scratch.next_self.push(u);
                    }
                }
            }
            scratch.next_self.sort_unstable();
            if !scratch.next_self.is_empty() {
                let pulled = ctx.spmm_rows(to_self, &scratch.next_self, &interims[l])?;
                let lin = layer.pull.forward_infer(ctx, params, &pulled)?;
                ctx.recycle(pulled);
                let act = ctx.leaky_relu(&lin, self.leaky_slope);
                ctx.recycle(lin);
                scatter_rows(&act, &scratch.next_self, &mut backs[l]);
                ctx.recycle(act);
            }
            for &u in &scratch.next_self {
                if scratch.mu_stamp[u as usize] != mu_mark {
                    scratch.mu_stamp[u as usize] = mu_mark;
                    scratch.dirty_mu.push(u);
                }
            }
            std::mem::swap(&mut scratch.dirty_self, &mut scratch.next_self);
        }
        scratch.dirty_mu.sort_unstable();
        if !scratch.dirty_mu.is_empty() {
            // Assemble the head input rows and re-run the head on exactly
            // the dirty entities.
            let width = self.dim * (self.layers.len() + 1);
            let mut combined = ctx.take(scratch.dirty_mu.len(), width);
            for (idx, &u) in scratch.dirty_mu.iter().enumerate() {
                let dst = combined.row_mut(idx);
                let mut off = 0;
                for back in backs.iter() {
                    dst[off..off + self.dim].copy_from_slice(back.row(u as usize));
                    off += self.dim;
                }
                dst[off..].copy_from_slice(embeddings.row(u as usize));
            }
            let mu_lin = self.mu_head.forward_infer(ctx, params, &combined)?;
            ctx.recycle(combined);
            let fresh = match self.mean_activation {
                MeanActivation::LeakyRelu => {
                    let fresh = ctx.leaky_relu(&mu_lin, self.leaky_slope);
                    ctx.recycle(mu_lin);
                    fresh
                }
                MeanActivation::Identity => mu_lin,
            };
            scatter_rows(&fresh, &scratch.dirty_mu, mu);
            ctx.recycle(fresh);
        }
        Ok(())
    }
}

/// Computes a deterministic (inference-mode) encoding and returns the mean
/// tensors, used when exporting embeddings for ranking.
///
/// Convenience wrapper over [`VbgeEncoder::forward_mean`] with a throwaway
/// scratch context; hot callers (the serving stack's `InferenceModel`) hold
/// a persistent [`FuncCtx`] instead.
pub fn encode_mean(
    encoder: &VbgeEncoder,
    params: &ParamSet,
    embeddings: &Tensor,
    to_other: &Arc<CsrMatrix>,
    to_self: &Arc<CsrMatrix>,
) -> Result<Tensor> {
    let mut ctx = FuncCtx::new();
    encoder.forward_mean(&mut ctx, params, embeddings, to_other, to_self)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_tensor::rng::component_rng;
    use cdrib_tensor::{Adam, Optimizer};

    fn toy_graph() -> (Arc<CsrMatrix>, Arc<CsrMatrix>) {
        // 5 users x 4 items
        let adj =
            CsrMatrix::from_edges(5, 4, &[(0, 0), (0, 1), (1, 1), (2, 2), (2, 3), (3, 0), (3, 3), (4, 2)]).unwrap();
        let norm_a = Arc::new(adj.row_normalized());
        let norm_at = Arc::new(adj.transpose().row_normalized());
        (norm_a, norm_at)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let (norm_a, norm_at) = toy_graph();
        let mut rng = component_rng(0, "vbge");
        let mut params = ParamSet::new();
        let enc = VbgeEncoder::new(&mut params, &mut rng, "user", 8, 2, 0.1).unwrap();
        assert_eq!(enc.dim(), 8);
        assert_eq!(enc.num_layers(), 2);
        let emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 8, 0.1);

        let mut tape = Tape::new();
        let e = tape.constant(emb.clone());
        let out = enc.forward(&mut tape, &params, e, &norm_at, &norm_a, None).unwrap();
        assert_eq!(tape.value(out.mu).unwrap().shape(), (5, 8));
        assert_eq!(tape.value(out.sigma).unwrap().shape(), (5, 8));
        // inference mode: z == mu
        assert_eq!(tape.value(out.z).unwrap(), tape.value(out.mu).unwrap());
        // sigma is strictly positive (softplus)
        assert!(tape.value(out.sigma).unwrap().as_slice().iter().all(|&v| v > 0.0));

        // Same inputs -> same outputs (no hidden state).
        let m1 = encode_mean(&enc, &params, &emb, &norm_at, &norm_a).unwrap();
        let m2 = encode_mean(&enc, &params, &emb, &norm_at, &norm_a).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn forward_mean_matches_tape_bitwise() {
        // The tape-free inference path and the recorded tape forward must
        // agree to the bit (both route through the shared functional kernel
        // layer), at every stacking depth and for both mean activations.
        let (norm_a, norm_at) = toy_graph();
        for layers in [1usize, 2, 3] {
            for activation in [MeanActivation::LeakyRelu, MeanActivation::Identity] {
                let mut rng = component_rng(layers as u64, "mean-parity");
                let mut params = ParamSet::new();
                let enc = VbgeEncoder::with_mean_activation(&mut params, &mut rng, "user", 8, layers, 0.1, activation)
                    .unwrap();
                let emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 8, 0.1);

                let mut tape = Tape::new();
                let e = tape.constant(emb.clone());
                let out = enc.forward(&mut tape, &params, e, &norm_at, &norm_a, None).unwrap();
                let tape_mu = tape.value(out.mu).unwrap();

                let mut ctx = FuncCtx::new();
                let func_mu = enc.forward_mean(&mut ctx, &params, &emb, &norm_at, &norm_a).unwrap();
                assert_eq!(tape_mu, &func_mu, "layers={layers} activation={activation:?}");

                // Warm repetitions serve everything from the pool.
                ctx.recycle(func_mu);
                let misses = ctx.pool_stats().misses;
                for _ in 0..3 {
                    let again = enc.forward_mean(&mut ctx, &params, &emb, &norm_at, &norm_a).unwrap();
                    assert_eq!(&again, tape_mu);
                    ctx.recycle(again);
                }
                assert_eq!(
                    ctx.pool_stats().misses,
                    misses,
                    "warm forward_mean must not miss the pool"
                );
            }
        }
    }

    #[test]
    fn forward_mean_cached_matches_forward_mean_bitwise() {
        let (norm_a, norm_at) = toy_graph();
        for layers in [0usize, 1, 2, 3] {
            for activation in [MeanActivation::LeakyRelu, MeanActivation::Identity] {
                let mut rng = component_rng(40 + layers as u64, "cache-parity");
                let mut params = ParamSet::new();
                let enc = VbgeEncoder::with_mean_activation(&mut params, &mut rng, "user", 8, layers, 0.1, activation)
                    .unwrap();
                let emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 8, 0.1);
                let mut ctx = FuncCtx::new();
                let reference = enc.forward_mean(&mut ctx, &params, &emb, &norm_at, &norm_a).unwrap();
                let mut cache = MeanCache::new();
                enc.forward_mean_cached(&mut ctx, &params, &emb, &norm_at, &norm_a, &mut cache)
                    .unwrap();
                assert!(cache.is_ready());
                assert_eq!(cache.mu(), &reference, "layers={layers} activation={activation:?}");
                ctx.recycle(reference);
            }
        }
    }

    #[test]
    fn reencode_rows_matches_full_rebuild_bitwise() {
        // Apply a structural change (one new user, one new item, new edges),
        // patch the cache incrementally, and compare against a from-scratch
        // cached forward on the post-delta graph: every stage and the final
        // mean table must be byte-for-byte identical.
        let old_edges = [(0usize, 0usize), (0, 1), (1, 1), (2, 2), (2, 3), (3, 0), (3, 3), (4, 2)];
        let new_edges = [(5usize, 4usize), (5, 1), (0, 2)]; // user 5 and item 4 are new
        for layers in [1usize, 2, 3] {
            let mut rng = component_rng(60 + layers as u64, "reencode-parity");
            let mut params = ParamSet::new();
            let enc = VbgeEncoder::new(&mut params, &mut rng, "user", 8, layers, 0.1).unwrap();
            let old_emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 8, 0.1);
            let mut new_emb = old_emb.clone();
            new_emb.resize_rows(6); // the new user's embedding row is zero

            let old_adj = CsrMatrix::from_edges(5, 4, &old_edges).unwrap();
            let all_edges: Vec<(usize, usize)> = old_edges.iter().chain(new_edges.iter()).copied().collect();
            let new_adj = CsrMatrix::from_edges(6, 5, &all_edges).unwrap();
            let (old_a, old_at) = (old_adj.row_normalized(), old_adj.transpose().row_normalized());
            let (new_a, new_at) = (new_adj.row_normalized(), new_adj.transpose().row_normalized());

            let mut ctx = FuncCtx::new();
            let mut cache = MeanCache::new();
            enc.forward_mean_cached(&mut ctx, &params, &old_emb, &old_at, &old_a, &mut cache)
                .unwrap();
            let mut scratch = DirtyScratch::new();
            // Touched = edge endpoints plus the new entities.
            enc.reencode_mean_rows(
                &mut ctx,
                &params,
                &new_emb,
                &new_at,
                &new_a,
                &[0, 5],
                &[1, 2, 4],
                5,
                4,
                &mut cache,
                &mut scratch,
            )
            .unwrap();
            assert!(scratch.dirty_mu().contains(&5));

            let mut reference = MeanCache::new();
            enc.forward_mean_cached(&mut ctx, &params, &new_emb, &new_at, &new_a, &mut reference)
                .unwrap();
            assert_eq!(cache.mu(), reference.mu(), "layers={layers}: mean table diverged");
            for l in 0..layers {
                assert_eq!(cache.interims[l], reference.interims[l], "layers={layers} interim {l}");
                assert_eq!(cache.backs[l], reference.backs[l], "layers={layers} back {l}");
            }
        }
    }

    #[test]
    fn reencode_rows_rejects_stale_or_unprepared_state() {
        let (norm_a, norm_at) = toy_graph();
        let mut rng = component_rng(9, "reencode-errors");
        let mut params = ParamSet::new();
        let enc = VbgeEncoder::new(&mut params, &mut rng, "user", 4, 1, 0.1).unwrap();
        let emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 4, 0.1);
        let mut ctx = FuncCtx::new();
        let mut cache = MeanCache::new();
        let mut scratch = DirtyScratch::new();
        // Cache not initialised.
        assert!(enc
            .reencode_mean_rows(
                &mut ctx,
                &params,
                &emb,
                &norm_at,
                &norm_a,
                &[],
                &[],
                5,
                4,
                &mut cache,
                &mut scratch
            )
            .is_err());
        enc.forward_mean_cached(&mut ctx, &params, &emb, &norm_at, &norm_a, &mut cache)
            .unwrap();
        // Shrinking entity counts is rejected.
        assert!(enc
            .reencode_mean_rows(
                &mut ctx,
                &params,
                &emb,
                &norm_at,
                &norm_a,
                &[],
                &[],
                6,
                4,
                &mut cache,
                &mut scratch
            )
            .is_err());
        // Mismatched embedding rows are rejected.
        let wrong = cdrib_tensor::rng::normal_tensor(&mut rng, 4, 4, 0.1);
        assert!(enc
            .reencode_mean_rows(
                &mut ctx,
                &params,
                &wrong,
                &norm_at,
                &norm_a,
                &[],
                &[],
                5,
                4,
                &mut cache,
                &mut scratch
            )
            .is_err());
        // A no-op re-encode (nothing touched, nothing new) changes nothing.
        let before = cache.mu().clone();
        enc.reencode_mean_rows(
            &mut ctx,
            &params,
            &emb,
            &norm_at,
            &norm_a,
            &[],
            &[],
            5,
            4,
            &mut cache,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(cache.mu(), &before);
        assert!(scratch.dirty_mu().is_empty());
    }

    #[test]
    fn training_mode_is_stochastic_but_seeded() {
        let (norm_a, norm_at) = toy_graph();
        let mut rng = component_rng(1, "vbge2");
        let mut params = ParamSet::new();
        let enc = VbgeEncoder::new(&mut params, &mut rng, "user", 4, 1, 0.1).unwrap();
        let emb = cdrib_tensor::rng::normal_tensor(&mut rng, 5, 4, 0.1);

        let run = |seed: u64| -> Tensor {
            let mut noise_rng = component_rng(seed, "noise");
            let mut tape = Tape::new();
            let e = tape.constant(emb.clone());
            let out = enc
                .forward(
                    &mut tape,
                    &params,
                    e,
                    &norm_at,
                    &norm_a,
                    Some(ForwardNoise {
                        dropout: 0.3,
                        rng: &mut noise_rng,
                    }),
                )
                .unwrap();
            tape.value(out.z).unwrap().clone()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same noise seed must reproduce the sample");
        assert_ne!(a, c, "different noise seeds must differ");
    }

    #[test]
    fn vbge_learns_to_reconstruct_interactions() {
        // A small end-to-end check: train a single-domain VBGE with a
        // VGAE-style loss and verify that observed edges end up scoring higher
        // than unobserved ones.
        let (norm_a, norm_at) = toy_graph();
        let edges = [(0usize, 0usize), (0, 1), (1, 1), (2, 2), (2, 3), (3, 0), (3, 3), (4, 2)];
        let non_edges = [(0usize, 2usize), (0, 3), (1, 0), (1, 3), (3, 1), (4, 0), (4, 3), (2, 0)];
        let mut rng = component_rng(2, "vbge-train");
        let mut params = ParamSet::new();
        let user_enc = VbgeEncoder::new(&mut params, &mut rng, "user", 8, 1, 0.1).unwrap();
        let item_enc = VbgeEncoder::new(&mut params, &mut rng, "item", 8, 1, 0.1).unwrap();
        let user_emb = params
            .add("user_emb", cdrib_tensor::rng::normal_tensor(&mut rng, 5, 8, 0.1))
            .unwrap();
        let item_emb = params
            .add("item_emb", cdrib_tensor::rng::normal_tensor(&mut rng, 4, 8, 0.1))
            .unwrap();
        let mut opt = Adam::with_defaults(0.02);
        let users: Vec<usize> = edges.iter().map(|e| e.0).chain(non_edges.iter().map(|e| e.0)).collect();
        let items: Vec<usize> = edges.iter().map(|e| e.1).chain(non_edges.iter().map(|e| e.1)).collect();
        let mut labels = vec![1.0f32; edges.len()];
        labels.extend(vec![0.0f32; non_edges.len()]);
        let labels = Tensor::from_vec(labels.len(), 1, labels).unwrap();

        for step in 0..120 {
            params.zero_grad();
            let mut noise_rng = component_rng(100 + step, "step");
            let mut tape = Tape::new();
            let ue = tape.param(&params, user_emb);
            let ie = tape.param(&params, item_emb);
            let uo = user_enc
                .forward(
                    &mut tape,
                    &params,
                    ue,
                    &norm_at,
                    &norm_a,
                    Some(ForwardNoise {
                        dropout: 0.0,
                        rng: &mut noise_rng,
                    }),
                )
                .unwrap();
            let io = item_enc
                .forward(
                    &mut tape,
                    &params,
                    ie,
                    &norm_a,
                    &norm_at,
                    Some(ForwardNoise {
                        dropout: 0.0,
                        rng: &mut noise_rng,
                    }),
                )
                .unwrap();
            let zu = tape.gather_rows(uo.z, &users).unwrap();
            let zi = tape.gather_rows(io.z, &items).unwrap();
            let logits = tape.rowwise_dot(zu, zi).unwrap();
            let rec = tape.bce_with_logits(logits, labels.clone()).unwrap();
            let klu = tape.kl_std_normal(uo.mu, uo.sigma).unwrap();
            let kli = tape.kl_std_normal(io.mu, io.sigma).unwrap();
            let kl = tape.add(klu, kli).unwrap();
            let kl = tape.scale(kl, 0.01).unwrap();
            let loss = tape.add(rec, kl).unwrap();
            tape.backward(loss, &mut params).unwrap();
            opt.step(&mut params).unwrap();
        }

        // Score with the deterministic means.
        let u_mu = encode_mean(&user_enc, &params, params.value(user_emb), &norm_at, &norm_a).unwrap();
        let i_mu = encode_mean(&item_enc, &params, params.value(item_emb), &norm_a, &norm_at).unwrap();
        let score =
            |u: usize, v: usize| -> f32 { u_mu.row(u).iter().zip(i_mu.row(v).iter()).map(|(a, b)| a * b).sum() };
        let pos_mean: f32 = edges.iter().map(|&(u, v)| score(u, v)).sum::<f32>() / edges.len() as f32;
        let neg_mean: f32 = non_edges.iter().map(|&(u, v)| score(u, v)).sum::<f32>() / non_edges.len() as f32;
        assert!(
            pos_mean > neg_mean + 0.3,
            "positives should score clearly higher: pos {pos_mean} vs neg {neg_mean}"
        );
        assert!(params.all_finite());
    }
}
