//! Seen-item filtering over either a materialised graph or a mapped CSR.
//!
//! Request filtering only ever needs one operation — `items_of(user)`, a
//! sorted slice of the user's known interactions — and the serve v2
//! container stores exactly that shape: an offsets section (`u64[n_users+1]`)
//! plus a concatenated sorted-items section (`u32[n_edges]`). [`SeenFilter`]
//! serves `items_of` straight from those mapped sections, so a zero-copy
//! engine filters without decoding a [`BipartiteGraph`] at load time.
//!
//! The full graph is still required by the heavyweight paths — delta ingest
//! mutates it, compaction serialises it into checkpoints — so the filter
//! materialises one lazily on first demand ([`SeenFilter::graph`]). The
//! first *mutation* ([`SeenFilter::graph_mut`]) drops the CSR view entirely:
//! from then on the graph is authoritative, which is the same copy-on-write
//! contract the mapped embedding tables follow.

use cdrib_graph::BipartiteGraph;
use cdrib_tensor::TableStorage;
use std::sync::OnceLock;

use crate::error::{Result, ServeError};

/// Per-domain seen-item state: a mapped CSR view, a materialised graph, or
/// (transiently) both when the graph was demanded read-only.
pub(crate) struct SeenFilter {
    /// The mapped (or heap-loaded) CSR sections of a v2 container; `None`
    /// for graph-backed filters and after the first mutation.
    csr: Option<SeenCsr>,
    /// The materialised graph; set eagerly by [`SeenFilter::from_graph`],
    /// lazily by [`SeenFilter::graph`].
    graph: OnceLock<BipartiteGraph>,
}

#[derive(Clone)]
struct SeenCsr {
    /// `n_users + 1` monotone offsets into `items`; `offsets[0] == 0` and
    /// `offsets[n_users] == items.len()` (validated at construction).
    offsets: TableStorage<u64>,
    /// Each user's items, sorted strictly ascending per user.
    items: TableStorage<u32>,
    n_items: usize,
}

impl SeenFilter {
    /// A filter over an already-materialised graph (v1 loads, bare-table
    /// construction).
    pub(crate) fn from_graph(graph: BipartiteGraph) -> Self {
        let lock = OnceLock::new();
        let _ = lock.set(graph);
        SeenFilter { csr: None, graph: lock }
    }

    /// A filter over CSR sections, typically borrowed from a mapped v2
    /// container. Validates the full CSR structure up front — monotone
    /// offsets, strictly ascending per-user item runs, every item below
    /// `n_items` — so `items_of` and the lazy graph build cannot fail later.
    pub(crate) fn from_csr(offsets: TableStorage<u64>, items: TableStorage<u32>, n_items: usize) -> Result<Self> {
        let err = |detail: String| ServeError::ShapeMismatch { detail };
        if offsets.is_empty() {
            return Err(err("seen CSR offsets section is empty".to_string()));
        }
        if offsets[0] != 0 {
            return Err(err(format!("seen CSR offsets start at {}, expected 0", offsets[0])));
        }
        if offsets[offsets.len() - 1] != items.len() as u64 {
            return Err(err(format!(
                "seen CSR offsets end at {} but the items section holds {} entries",
                offsets[offsets.len() - 1],
                items.len()
            )));
        }
        for user in 0..offsets.len() - 1 {
            let (start, end) = (offsets[user], offsets[user + 1]);
            if end < start {
                return Err(err(format!(
                    "seen CSR offsets decrease at user {user}: {start} -> {end}"
                )));
            }
            let run = &items[start as usize..end as usize];
            for pair in run.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(err(format!(
                        "seen CSR items of user {user} are not strictly ascending: {} then {}",
                        pair[0], pair[1]
                    )));
                }
            }
            if let Some(&last) = run.last() {
                if last as usize >= n_items {
                    return Err(err(format!(
                        "seen CSR item {last} of user {user} is outside the {n_items}-item domain"
                    )));
                }
            }
        }
        Ok(SeenFilter {
            csr: Some(SeenCsr {
                offsets,
                items,
                n_items,
            }),
            graph: OnceLock::new(),
        })
    }

    pub(crate) fn n_users(&self) -> usize {
        match &self.csr {
            Some(csr) => csr.offsets.len() - 1,
            None => self.graph().n_users(),
        }
    }

    pub(crate) fn n_items(&self) -> usize {
        match &self.csr {
            Some(csr) => csr.n_items,
            None => self.graph().n_items(),
        }
    }

    pub(crate) fn n_edges(&self) -> usize {
        match &self.csr {
            Some(csr) => csr.items.len(),
            None => self.graph().n_edges(),
        }
    }

    /// The user's known items, sorted ascending — the only operation the
    /// request path needs, free of graph materialisation on a CSR filter.
    pub(crate) fn items_of(&self, user: usize) -> &[u32] {
        match &self.csr {
            Some(csr) => &csr.items[csr.offsets[user] as usize..csr.offsets[user + 1] as usize],
            None => self.graph().items_of(user),
        }
    }

    /// Whether the filter still serves from mapped sections.
    pub(crate) fn is_mapped(&self) -> bool {
        self.csr
            .as_ref()
            .is_some_and(|csr| csr.offsets.is_mapped() || csr.items.is_mapped())
    }

    /// The full graph, materialised from the CSR on first demand.
    pub(crate) fn graph(&self) -> &BipartiteGraph {
        self.graph.get_or_init(|| {
            let csr = self
                .csr
                .as_ref()
                .expect("a filter without a graph always carries a CSR");
            let mut edges = Vec::with_capacity(csr.items.len());
            for user in 0..csr.offsets.len() - 1 {
                for &item in &csr.items[csr.offsets[user] as usize..csr.offsets[user + 1] as usize] {
                    edges.push((user, item as usize));
                }
            }
            BipartiteGraph::new(csr.offsets.len() - 1, csr.n_items, &edges)
                .expect("a validated CSR always builds a graph")
        })
    }

    /// Mutable access to the graph — the copy-on-write trigger. The CSR
    /// view would go stale on the first mutation, so it is dropped and the
    /// graph is authoritative from here on.
    pub(crate) fn graph_mut(&mut self) -> &mut BipartiteGraph {
        self.graph();
        self.csr = None;
        self.graph.get_mut().expect("materialised just above")
    }
}

impl Clone for SeenFilter {
    fn clone(&self) -> Self {
        let graph = OnceLock::new();
        if let Some(g) = self.graph.get() {
            let _ = graph.set(g.clone());
        }
        SeenFilter {
            csr: self.csr.clone(),
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_filter() -> SeenFilter {
        // user 0: items 1, 3; user 1: none; user 2: item 0
        let offsets = TableStorage::from_vec(vec![0u64, 2, 2, 3]);
        let items = TableStorage::from_vec(vec![1u32, 3, 0]);
        SeenFilter::from_csr(offsets, items, 4).unwrap()
    }

    #[test]
    fn csr_filter_serves_items_without_a_graph() {
        let filter = csr_filter();
        assert_eq!(filter.n_users(), 3);
        assert_eq!(filter.n_items(), 4);
        assert_eq!(filter.n_edges(), 3);
        assert_eq!(filter.items_of(0), &[1, 3]);
        assert_eq!(filter.items_of(1), &[] as &[u32]);
        assert_eq!(filter.items_of(2), &[0]);
    }

    #[test]
    fn lazy_graph_matches_csr() {
        let filter = csr_filter();
        let graph = filter.graph();
        assert_eq!(graph.n_users(), 3);
        assert_eq!(graph.n_items(), 4);
        assert_eq!(graph.items_of(0), &[1, 3]);
        // The CSR stays authoritative for reads after a read-only demand.
        assert_eq!(filter.items_of(0), &[1, 3]);
    }

    #[test]
    fn mutation_drops_the_csr() {
        let mut filter = csr_filter();
        let delta = cdrib_graph::GraphDelta {
            add_users: 0,
            add_items: 0,
            edges: vec![(1, 2)],
            ..cdrib_graph::GraphDelta::empty()
        };
        filter.graph_mut().apply_delta(&delta).unwrap();
        assert!(filter.csr.is_none());
        assert_eq!(filter.items_of(1), &[2]);
        assert_eq!(filter.n_edges(), 4);
    }

    #[test]
    fn from_csr_rejects_malformed_structure() {
        // Decreasing offsets.
        assert!(SeenFilter::from_csr(
            TableStorage::from_vec(vec![0u64, 2, 1]),
            TableStorage::from_vec(vec![0u32, 1]),
            4
        )
        .is_err());
        // Offsets/items length disagreement.
        assert!(SeenFilter::from_csr(
            TableStorage::from_vec(vec![0u64, 3]),
            TableStorage::from_vec(vec![0u32, 1]),
            4
        )
        .is_err());
        // Unsorted run.
        assert!(SeenFilter::from_csr(
            TableStorage::from_vec(vec![0u64, 2]),
            TableStorage::from_vec(vec![2u32, 1]),
            4
        )
        .is_err());
        // Item outside the domain.
        assert!(SeenFilter::from_csr(
            TableStorage::from_vec(vec![0u64, 1]),
            TableStorage::from_vec(vec![9u32]),
            4
        )
        .is_err());
    }
}
