//! Read-only memory-mapped regions for zero-copy artifact loading.
//!
//! The v2 artifact container ([`crate::artifact::v2`]) lays its table
//! sections out 64-byte-aligned so a serve process can use them straight
//! from the page cache: load = validate header + checksums + `mmap`, not
//! decode. This module owns the mapping itself — a [`MappedRegion`] is the
//! refcounted backing that [`crate::storage::TableStorage`] views borrow
//! from.
//!
//! No external crates: on unix the two syscalls are declared by hand
//! (`std` already links libc, so `mmap`/`munmap` resolve at link time).
//! Everywhere else — and whenever the `CDRIB_NO_MMAP` environment variable
//! is set — [`map_file`] falls back to reading the file into one 64-byte
//! aligned heap buffer with the *same layout*, so every downstream offset
//! computation is identical on both paths and the fallback is exercised by
//! the same parity tests as the map.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// Alignment guaranteed for the start of every region (and, by the v2
/// container layout, for the start of every section inside it). Matches a
/// cache line and the widest SIMD load the kernels use.
pub const REGION_ALIGN: usize = 64;

/// How the bytes of a [`MappedRegion`] are backed.
enum Backing {
    /// `mmap(2)` of a file; unmapped on drop.
    #[cfg(unix)]
    Mapped,
    /// One aligned heap buffer (fallback path and in-memory loads);
    /// deallocated on drop.
    Heap(std::alloc::Layout),
    /// Zero-length region; nothing to release.
    Empty,
}

/// An immutable, refcounted byte region with a 64-byte-aligned base.
///
/// Obtained from [`map_file`] (a real `mmap` when available, a heap read
/// otherwise) or [`from_bytes`] (always heap). Shared via `Arc` so any
/// number of borrowed table views can hold the backing alive; the region
/// is read-only for its entire lifetime, which is what makes the
/// `Send + Sync` impls below sound.
pub struct MappedRegion {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the region is immutable after construction (PROT_READ mapping or
// a heap buffer that is never written again), so shared references from
// multiple threads never race.
unsafe impl Send for MappedRegion {}
unsafe impl Sync for MappedRegion {}

impl MappedRegion {
    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points at `len` initialized, immutable bytes owned
        // by this region (mmap'd file pages or a heap buffer we filled).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the region in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the bytes come from a real `mmap`, `false` on the heap
    /// fallback. Tests use this to assert which path they exercised.
    pub fn is_mapped(&self) -> bool {
        match self.backing {
            #[cfg(unix)]
            Backing::Mapped => true,
            _ => false,
        }
    }

    /// Base pointer (64-byte aligned for non-empty regions).
    pub(crate) fn base_ptr(&self) -> *const u8 {
        self.ptr
    }

    fn empty() -> Self {
        MappedRegion {
            ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
            len: 0,
            backing: Backing::Empty,
        }
    }

    /// Allocates a 64-byte-aligned heap buffer and fills it from `fill`.
    fn heap_from(len: usize, fill: impl FnOnce(&mut [u8]) -> io::Result<()>) -> io::Result<Self> {
        if len == 0 {
            return Ok(Self::empty());
        }
        let layout = std::alloc::Layout::from_size_align(len, REGION_ALIGN).map_err(io::Error::other)?;
        // SAFETY: `layout` has non-zero size.
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // SAFETY: freshly allocated, exclusively owned `len` bytes.
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        if let Err(e) = fill(buf) {
            // SAFETY: allocated just above with this exact layout.
            unsafe { std::alloc::dealloc(ptr, layout) };
            return Err(e);
        }
        Ok(MappedRegion {
            ptr,
            len,
            backing: Backing::Heap(layout),
        })
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        match self.backing {
            #[cfg(unix)]
            Backing::Mapped => {
                // SAFETY: `ptr`/`len` are exactly what mmap returned; the
                // region is dropped once (Arc) so no double-unmap.
                unsafe {
                    sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
                }
            }
            Backing::Heap(layout) => {
                // SAFETY: allocated with this exact layout in `heap_from`.
                unsafe { std::alloc::dealloc(self.ptr as *mut u8, layout) };
            }
            Backing::Empty => {}
        }
    }
}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedRegion")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// Whether [`map_file`] must take the heap-read fallback.
///
/// Set the `CDRIB_NO_MMAP` environment variable (to anything) to force it —
/// the parity and bench suites use this to exercise both paths on one
/// machine.
pub fn mmap_disabled() -> bool {
    std::env::var_os("CDRIB_NO_MMAP").is_some()
}

/// Copies `bytes` into a fresh 64-byte-aligned heap region.
///
/// For in-memory loads (e.g. an artifact that was just encoded) where the
/// caller still wants the exact code path of the mapped reader: same
/// alignment guarantees, same borrowed views, one owned buffer.
pub fn from_bytes(bytes: &[u8]) -> Arc<MappedRegion> {
    let region = MappedRegion::heap_from(bytes.len(), |buf| {
        buf.copy_from_slice(bytes);
        Ok(())
    })
    .expect("heap region for in-memory bytes");
    Arc::new(region)
}

/// Maps `path` read-only, or falls back to one aligned heap read when
/// `CDRIB_NO_MMAP` is set or the platform has no `mmap`.
///
/// Both paths produce a byte-identical region, so everything downstream
/// (header validation, section offsets, table views) is oblivious to which
/// one ran.
pub fn map_file(path: impl AsRef<Path>) -> io::Result<Arc<MappedRegion>> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if len > usize::MAX as u64 {
        return Err(io::Error::other("file too large to map on this platform"));
    }
    let len = len as usize;
    if len == 0 {
        return Ok(Arc::new(MappedRegion::empty()));
    }
    #[cfg(unix)]
    if !mmap_disabled() {
        return sys::map(&file, len).map(Arc::new);
    }
    let region = MappedRegion::heap_from(len, |buf| file.read_exact(buf))?;
    Ok(Arc::new(region))
}

#[cfg(unix)]
mod sys {
    //! Hand-declared bindings for the two syscalls this module needs.
    //! `std` links libc on every unix target, so these resolve without any
    //! new dependency.

    use super::{Backing, MappedRegion};
    use core::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    /// `PROT_READ`: pages are readable only.
    const PROT_READ: i32 = 1;
    /// `MAP_PRIVATE`: copy-on-write private mapping (we never write, so
    /// this is simply "not shared with other writers").
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut c_void, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut c_void;
        pub(super) fn munmap(addr: *const c_void, len: usize) -> i32;
    }

    pub(super) fn map(file: &File, len: usize) -> io::Result<MappedRegion> {
        // SAFETY: fd is a valid open file, len > 0; a failed map returns
        // MAP_FAILED which we turn into the errno error below.
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        debug_assert_eq!(ptr as usize % super::REGION_ALIGN, 0, "mmap returns page-aligned bases");
        Ok(MappedRegion {
            ptr: ptr as *const u8,
            len,
            backing: Backing::Mapped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_is_aligned_and_identical() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let region = from_bytes(&data);
        assert_eq!(region.as_bytes(), &data[..]);
        assert_eq!(region.base_ptr() as usize % REGION_ALIGN, 0);
        assert!(!region.is_mapped());
    }

    #[test]
    fn empty_region_is_fine() {
        let region = from_bytes(&[]);
        assert!(region.is_empty());
        assert_eq!(region.as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn map_file_roundtrips() {
        let dir = std::env::temp_dir().join("cdrib-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let data: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let region = map_file(&path).unwrap();
        assert_eq!(region.len(), data.len());
        assert_eq!(region.as_bytes(), &data[..]);
        assert_eq!(region.base_ptr() as usize % REGION_ALIGN, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_file_empty_file() {
        let dir = std::env::temp_dir().join("cdrib-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let region = map_file(&path).unwrap();
        assert!(region.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
