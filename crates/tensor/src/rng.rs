//! Deterministic random-number helpers.
//!
//! Every stochastic component in the reproduction (data generation, parameter
//! initialisation, negative sampling, dropout masks, reparameterisation
//! noise) draws from a [`Rng`](rand::Rng) seeded through this module so that
//! an experiment is fully determined by its `u64` seed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a child seed from a parent seed and a component label.
///
/// This is a small splitmix-style mix so that independent components (e.g.
/// "dropout" vs "negative-sampling") get decorrelated streams even though
/// they share the experiment seed.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ parent;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    h = h.wrapping_add(parent.rotate_left(17));
    h ^= h >> 29;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 32;
    h
}

/// Creates a [`StdRng`] for a named component of an experiment.
pub fn component_rng(seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, label))
}

/// Samples a standard-normal value using the Box-Muller transform.
///
/// We intentionally avoid `rand_distr` to stay within the allowed crate set;
/// Box-Muller is accurate enough for VAE reparameterisation noise.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        let z = r * theta.cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Samples a *pair* of independent standard-normal values from one
/// Box-Muller transform (using both the cosine and the sine branch), halving
/// the uniform draws and transcendentals per sample relative to
/// [`sample_standard_normal`].
pub fn sample_standard_normal_pair<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        let (sin, cos) = theta.sin_cos();
        let (z0, z1) = (r * cos, r * sin);
        if z0.is_finite() && z1.is_finite() {
            return (z0, z1);
        }
    }
}

/// Overwrites a buffer with i.i.d. `N(0, std^2)` samples (the
/// allocation-free counterpart of [`normal_tensor`], for pooled buffers).
///
/// The buffer is first filled with uniform draws (one per element, half the
/// uniforms of the unpaired transform), then transformed in place by the
/// vectorised Box-Muller kernel [`crate::kernels::box_muller`] — the whole
/// `ln`/`sin`/`cos` chain runs through the branchless polynomial
/// approximations, 8/16-wide. [`fill_normal_scalar`] keeps the libm
/// formulation as the parity/bench reference.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], std: f32) {
    let (pairs, rest) = buf.split_at_mut(buf.len() / 2 * 2);
    for u in pairs.iter_mut() {
        *u = rng.gen::<f32>();
    }
    crate::kernels::box_muller(pairs, std);
    if let [last] = rest {
        *last = sample_standard_normal(rng) * std;
    }
}

/// The pre-vectorisation formulation of [`fill_normal`]: pairwise scalar
/// Box-Muller through libm `ln`/`sin_cos`. Kept as the reference the
/// kernel-parity suite and the `fill_normal` bench pair compare against.
pub fn fill_normal_scalar<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], std: f32) {
    let (pairs, rest) = buf.split_at_mut(buf.len() / 2 * 2);
    for pair in pairs.chunks_exact_mut(2) {
        let (z0, z1) = sample_standard_normal_pair(rng);
        pair[0] = z0 * std;
        pair[1] = z1 * std;
    }
    if let [last] = rest {
        *last = sample_standard_normal(rng) * std;
    }
}

/// Fills a tensor with i.i.d. `N(0, std^2)` samples.
pub fn normal_tensor<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    fill_normal(rng, t.as_mut_slice(), std);
    t
}

/// Fills a tensor with i.i.d. `Uniform(lo, hi)` samples.
pub fn uniform_tensor<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// A Bernoulli keep-mask scaled by `1/keep_prob` (inverted dropout).
///
/// `rate` is the probability of *dropping* an element. The returned mask is
/// multiplied elementwise with activations during training so that the
/// expected value matches evaluation-time behaviour.
pub fn dropout_mask<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, rate: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    fill_dropout_mask(rng, t.as_mut_slice(), rate);
    t
}

/// Overwrites a buffer with an inverted-dropout keep-mask (the
/// allocation-free counterpart of [`dropout_mask`], for pooled buffers).
pub fn fill_dropout_mask<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], rate: f32) {
    debug_assert!((0.0..1.0).contains(&rate));
    if rate <= 0.0 {
        buf.fill(1.0);
        return;
    }
    let keep = 1.0 - rate;
    let scale = 1.0 / keep;
    for v in buf {
        *v = if rng.gen::<f32>() < keep { scale } else { 0.0 };
    }
}

/// Samples `k` distinct indices from `0..n` (k <= n) without replacement
/// using a partial Fisher-Yates shuffle over a scratch vector.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Shuffles a slice in place with the Fisher-Yates algorithm.
pub fn shuffle_in_place<T, R: Rng + ?Sized>(rng: &mut R, items: &mut [T]) {
    if items.len() < 2 {
        return;
    }
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(42, "dropout"), derive_seed(42, "dropout"));
        assert_ne!(derive_seed(42, "dropout"), derive_seed(42, "negatives"));
        assert_ne!(derive_seed(42, "dropout"), derive_seed(43, "dropout"));
    }

    #[test]
    fn standard_normal_has_reasonable_moments() {
        let mut rng = component_rng(7, "normal-test");
        let n = 20_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let v = sample_standard_normal(&mut rng) as f64;
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn uniform_tensor_respects_bounds() {
        let mut rng = component_rng(1, "uniform");
        let t = uniform_tensor(&mut rng, 10, 10, -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn dropout_mask_preserves_expectation() {
        let mut rng = component_rng(3, "dropout");
        let rate = 0.3;
        let m = dropout_mask(&mut rng, 100, 100, rate);
        let mean = m.mean().unwrap();
        assert!((mean - 1.0).abs() < 0.05, "mean of inverted dropout mask {mean}");
        let zero_frac = m.as_slice().iter().filter(|&&v| v == 0.0).count() as f32 / 10_000.0;
        assert!((zero_frac - rate).abs() < 0.05);
        let none = dropout_mask(&mut rng, 4, 4, 0.0);
        assert_eq!(none.sum(), 16.0);
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = component_rng(5, "wr");
        let s = sample_without_replacement(&mut rng, 50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&v| v < 50));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = component_rng(9, "shuffle");
        let mut v: Vec<usize> = (0..100).collect();
        shuffle_in_place(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_tensor_scales_std() {
        let mut rng = component_rng(11, "nt");
        let t = normal_tensor(&mut rng, 50, 50, 0.01);
        let var = t.sum_squares() / t.len() as f32;
        assert!(var < 0.001, "variance should be around 1e-4, got {var}");
    }
}
