//! The CDRIB model (§III).
//!
//! The model holds, per domain, an embedding table for users and items plus a
//! user-VBGE and an item-VBGE, and a shared contrastive discriminator. Its
//! training objective is Eq. (16):
//!
//! * **minimality terms** — KL divergences of every latent Gaussian against
//!   the standard-normal prior, weighted by the Lagrangian multipliers
//!   `beta_1`/`beta_2` (the tractable form of `I(Z; X_u)` etc., Eq. 11);
//! * **reconstruction terms** — binary cross-entropy over sampled positive /
//!   negative interactions (Eq. 13), where interactions of *overlapping*
//!   users are reconstructed with the user latent of the **other** domain
//!   (cross-domain IB regularizer) and interactions of non-overlapping users
//!   with their own domain's latent (in-domain IB regularizer);
//! * **contrastive term** — a discriminator distinguishing aligned from
//!   misaligned overlap-user latent pairs across domains (Eq. 14-15).

use crate::config::CdribConfig;
use crate::error::{CoreError, Result};
use crate::vbge::{ForwardNoise, MeanActivation, VbgeEncoder, VbgeOutput};
use cdrib_data::{CdrScenario, DomainId, EdgeBatch, EpochBatches};
use cdrib_graph::BipartiteGraph;
use cdrib_tensor::rng::{component_rng, shuffle_in_place};
use cdrib_tensor::{Activation, CsrMatrix, Mlp, ParamId, ParamSet, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;

/// Cached graph views and parameter handles of one domain. Crate-visible so
/// the tape-free [`InferenceModel`](crate::infer::InferenceModel) can clone
/// the pieces it needs when freezing a trained model.
pub(crate) struct DomainState {
    pub(crate) user_emb: ParamId,
    pub(crate) item_emb: ParamId,
    pub(crate) user_encoder: VbgeEncoder,
    pub(crate) item_encoder: VbgeEncoder,
    /// `Norm(A)`, `|U| x |V|`.
    pub(crate) norm_a: Arc<CsrMatrix>,
    /// `Norm(A^T)`, `|V| x |U|`.
    pub(crate) norm_a_t: Arc<CsrMatrix>,
}

/// Latent variables of one domain produced during a forward pass.
pub struct DomainEncoding {
    /// User latents.
    pub users: VbgeOutput,
    /// Item latents.
    pub items: VbgeOutput,
}

/// Deterministic embeddings exported after training (the Gaussian means).
#[derive(Debug, Clone)]
pub struct CdribEmbeddings {
    /// User means of domain X.
    pub x_users: Tensor,
    /// Item means of domain X.
    pub x_items: Tensor,
    /// User means of domain Y.
    pub y_users: Tensor,
    /// Item means of domain Y.
    pub y_items: Tensor,
}

impl CdribEmbeddings {
    /// Wraps the embeddings into the shared evaluation scorer.
    pub fn into_scorer(self) -> cdrib_eval::EmbeddingScorer {
        cdrib_eval::EmbeddingScorer::dot(self.x_users, self.x_items, self.y_users, self.y_items)
    }

    /// Borrowing variant of [`CdribEmbeddings::into_scorer`].
    pub fn scorer(&self) -> cdrib_eval::EmbeddingScorer {
        self.clone().into_scorer()
    }
}

/// The CDRIB model.
pub struct CdribModel {
    config: CdribConfig,
    params: ParamSet,
    x: DomainState,
    y: DomainState,
    discriminator: Mlp,
    /// Overlapping users available as cross-domain bridges during training.
    train_overlap: Vec<u32>,
    train_overlap_set: HashSet<u32>,
    /// Reusable per-step index/label buffers (see [`StepScratch`]), parked
    /// in an `Option` so each step can move it out and back with
    /// `Option::take` — a plain pointer move. (`std::mem::take` of the
    /// struct itself would build a `StepScratch::default()` per step, which
    /// allocates one `Arc` per index buffer.)
    scratch: Option<StepScratch>,
}

/// Reusable buffers of the per-step loss construction.
///
/// A training step partitions every edge batch into index and label lists
/// and hands gather indices to the tape. Rebuilding those `Vec`s each step
/// is not just allocator traffic: the freed blocks sit at the top of the
/// heap, glibc trims them back to the kernel, and the next step pays the
/// page faults again — measurably slower than the compute it supports. The
/// scratch keeps one copy of every list alive for the lifetime of the model;
/// gather indices are `Arc`s so the tape shares them by refcount
/// ([`Tape::gather_rows_shared`]) and hands back exclusive access after each
/// [`Tape::reset`].
#[derive(Default)]
struct StepScratch {
    // One reconstruction slot per target domain: both run within one step,
    // so the tape still holds the X-slot Arcs when the Y call builds its
    // lists — separate slots keep every buffer exclusively recoverable.
    cross_users: [Arc<Vec<usize>>; 2],
    cross_items: [Arc<Vec<usize>>; 2],
    cross_labels: Vec<f32>,
    in_users: [Arc<Vec<usize>>; 2],
    in_items: [Arc<Vec<usize>>; 2],
    in_labels: Vec<f32>,
    overlap_idx: Arc<Vec<usize>>,
    contrastive_users: Vec<u32>,
    contrastive_idx: Arc<Vec<usize>>,
    contrastive_partner: Arc<Vec<usize>>,
    losses: Vec<Var>,
}

/// Exclusive access to a shared index buffer, recovering it when the tape
/// released its clone (after `reset`) and falling back to a fresh buffer
/// when something still holds one (e.g. an error path skipped the reset).
fn shared_mut(indices: &mut Arc<Vec<usize>>) -> &mut Vec<usize> {
    if Arc::get_mut(indices).is_none() {
        *indices = Arc::new(Vec::new());
    }
    Arc::get_mut(indices).expect("the Arc was just made unique")
}

/// Internal rescaling of the KL minimality terms.
///
/// The paper's reconstruction term (Eq. 13) is a *sum* over sampled
/// interactions while this implementation averages it over the mini-batch
/// (so the learning rate is batch-size independent). The KL terms are
/// likewise averaged over entities. To keep the `beta` sweep of Fig. 5 on the
/// paper's scale (0.5 .. 2.0) while preserving the balance between the two
/// averaged terms, the KL weight is `beta * KL_SCALE`.
const KL_SCALE: f32 = 0.1;

/// The per-step loss breakdown (useful for diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LossBreakdown {
    /// Total objective value.
    pub total: f32,
    /// Weighted KL minimality value.
    pub minimality: f32,
    /// Reconstruction BCE value (cross-domain + in-domain).
    pub reconstruction: f32,
    /// Contrastive BCE value.
    pub contrastive: f32,
}

impl CdribModel {
    /// Builds the model for a scenario.
    pub fn new(config: &CdribConfig, scenario: &CdrScenario) -> Result<Self> {
        config.validate()?;
        if scenario.train_overlap_users.is_empty() {
            return Err(CoreError::InvalidScenario {
                detail: "the scenario has no training overlap users to bridge the domains".into(),
            });
        }
        let mut init_rng = component_rng(config.seed, "cdrib-init");
        let mut params = ParamSet::new();

        let build_domain = |params: &mut ParamSet,
                            rng: &mut StdRng,
                            prefix: &str,
                            dom: &cdrib_data::DomainData|
         -> Result<DomainState> {
            let user_emb = params.add(
                format!("{prefix}.user_emb"),
                cdrib_tensor::init::embedding_normal(rng, dom.n_users, config.dim, 0.1),
            )?;
            let item_emb = params.add(
                format!("{prefix}.item_emb"),
                cdrib_tensor::init::embedding_normal(rng, dom.n_items, config.dim, 0.1),
            )?;
            let mean_activation = if config.nonlinear_mean {
                MeanActivation::LeakyRelu
            } else {
                MeanActivation::Identity
            };
            let user_encoder = VbgeEncoder::with_mean_activation(
                params,
                rng,
                &format!("{prefix}.user_vbge"),
                config.dim,
                config.layers,
                config.leaky_slope,
                mean_activation,
            )?;
            let item_encoder = VbgeEncoder::with_mean_activation(
                params,
                rng,
                &format!("{prefix}.item_vbge"),
                config.dim,
                config.layers,
                config.leaky_slope,
                mean_activation,
            )?;
            Ok(DomainState {
                user_emb,
                item_emb,
                user_encoder,
                item_encoder,
                norm_a: dom.train.norm_adjacency(),
                norm_a_t: dom.train.norm_adjacency_transpose(),
            })
        };

        let x = build_domain(&mut params, &mut init_rng, "x", &scenario.x)?;
        let y = build_domain(&mut params, &mut init_rng, "y", &scenario.y)?;

        // "a three-layer MLP followed by a sigmoid" (Eq. 15); the sigmoid is
        // folded into the BCE-with-logits loss.
        let discriminator = Mlp::new(
            &mut params,
            &mut init_rng,
            "discriminator",
            &[2 * config.dim, 2 * config.dim, config.dim, 1],
            Activation::LeakyRelu(config.leaky_slope),
            Activation::Identity,
        )?;

        Ok(CdribModel {
            config: config.clone(),
            params,
            x,
            y,
            discriminator,
            train_overlap: scenario.train_overlap_users.clone(),
            train_overlap_set: scenario.train_overlap_users.iter().copied().collect(),
            scratch: Some(StepScratch::default()),
        })
    }

    /// The model's hyperparameters.
    pub fn config(&self) -> &CdribConfig {
        &self.config
    }

    /// Immutable access to the parameter set (used by the trainer/optimizer).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameter set (used by the trainer/optimizer).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Replaces the list of overlap users usable as bridges (overlap-ratio
    /// robustness study, Table VIII).
    pub fn set_train_overlap(&mut self, users: &[u32]) {
        self.train_overlap = users.to_vec();
        self.train_overlap_set = users.iter().copied().collect();
    }

    pub(crate) fn domain(&self, id: DomainId) -> &DomainState {
        match id {
            DomainId::X => &self.x,
            DomainId::Y => &self.y,
        }
    }

    /// Encodes one domain. `noise_rng` enables training mode (dropout and
    /// reparameterisation sampling).
    pub fn encode_domain(
        &self,
        tape: &mut Tape,
        id: DomainId,
        mut noise_rng: Option<&mut StdRng>,
    ) -> Result<DomainEncoding> {
        let dom = self.domain(id);
        let user_emb = tape.param(&self.params, dom.user_emb);
        let item_emb = tape.param(&self.params, dom.item_emb);
        let users = dom.user_encoder.forward(
            tape,
            &self.params,
            user_emb,
            &dom.norm_a_t,
            &dom.norm_a,
            noise_rng.as_deref_mut().map(|rng| ForwardNoise {
                dropout: self.config.dropout,
                rng,
            }),
        )?;
        let items = dom.item_encoder.forward(
            tape,
            &self.params,
            item_emb,
            &dom.norm_a,
            &dom.norm_a_t,
            noise_rng.map(|rng| ForwardNoise {
                dropout: self.config.dropout,
                rng,
            }),
        )?;
        Ok(DomainEncoding { users, items })
    }

    /// Builds the reconstruction BCE of one target domain's edge batch,
    /// splitting it into the cross-domain part (overlap users encoded by the
    /// *source* domain) and the in-domain part (everyone else).
    #[allow(clippy::too_many_arguments)]
    fn reconstruction_terms(
        &self,
        tape: &mut Tape,
        batch: &EdgeBatch,
        target_users: &DomainEncoding,
        source_users: &DomainEncoding,
        target_items: &DomainEncoding,
        scratch: &mut StepScratch,
        slot: usize,
    ) -> Result<(f32, f32)> {
        // Partition positives and negatives by whether the user is a training
        // overlap user, into the reusable scratch lists.
        {
            let cross_users = shared_mut(&mut scratch.cross_users[slot]);
            let cross_items = shared_mut(&mut scratch.cross_items[slot]);
            let in_users = shared_mut(&mut scratch.in_users[slot]);
            let in_items = shared_mut(&mut scratch.in_items[slot]);
            let cross_labels = &mut scratch.cross_labels;
            let in_labels = &mut scratch.in_labels;
            cross_users.clear();
            cross_items.clear();
            cross_labels.clear();
            in_users.clear();
            in_items.clear();
            in_labels.clear();
            let mut push = |user: u32, item: u32, label: f32| {
                if self.train_overlap_set.contains(&user) {
                    cross_users.push(user as usize);
                    cross_items.push(item as usize);
                    cross_labels.push(label);
                } else {
                    in_users.push(user as usize);
                    in_items.push(item as usize);
                    in_labels.push(label);
                }
            };
            for (k, &u) in batch.users.iter().enumerate() {
                push(u, batch.pos_items[k], 1.0);
            }
            for (k, &u) in batch.neg_users.iter().enumerate() {
                push(u, batch.neg_items[k], 0.0);
            }
        }

        let mut cross_value = 0.0f32;
        let mut in_value = 0.0f32;
        if !scratch.cross_users[slot].is_empty() {
            // Fused gather + row-wise dot: scores the sampled (user, item)
            // pairs without materialising the gathered latent matrices.
            let logits = tape.gather_rowwise_dot(
                source_users.users.z,
                target_items.items.z,
                &scratch.cross_users[slot],
                &scratch.cross_items[slot],
            )?;
            let labels = pooled_column(tape, &scratch.cross_labels);
            let bce = tape.bce_with_logits(logits, labels)?;
            cross_value = tape.value(bce)?.scalar_value()?;
            scratch.losses.push(bce);
        }
        if self.config.variant.use_in_domain_ib() && !scratch.in_users[slot].is_empty() {
            let logits = tape.gather_rowwise_dot(
                target_users.users.z,
                target_items.items.z,
                &scratch.in_users[slot],
                &scratch.in_items[slot],
            )?;
            let labels = pooled_column(tape, &scratch.in_labels);
            let bce = tape.bce_with_logits(logits, labels)?;
            in_value = tape.value(bce)?.scalar_value()?;
            scratch.losses.push(bce);
        }
        Ok((cross_value, in_value))
    }

    /// Builds the KL minimality terms.
    fn minimality_terms(
        &self,
        tape: &mut Tape,
        enc_x: &DomainEncoding,
        enc_y: &DomainEncoding,
        scratch: &mut StepScratch,
    ) -> Result<f32> {
        let mut value = 0.0f32;
        let losses = &mut scratch.losses;
        let mut add_kl = |tape: &mut Tape, mu: Var, sigma: Var, weight: f32, value: &mut f32| -> Result<()> {
            let kl = tape.kl_std_normal(mu, sigma)?;
            let kl = tape.scale(kl, weight)?;
            *value += tape.value(kl)?.scalar_value()?;
            losses.push(kl);
            Ok(())
        };
        // User minimality: over all users when the in-domain regularizer is
        // active (Eq. 16), otherwise only over the overlapping users that the
        // cross-domain regularizer constrains (Eq. 7).
        let w1 = self.config.beta1 * KL_SCALE;
        let w2 = self.config.beta2 * KL_SCALE;
        if self.config.variant.use_in_domain_ib() {
            add_kl(tape, enc_x.users.mu, enc_x.users.sigma, w1, &mut value)?;
            add_kl(tape, enc_y.users.mu, enc_y.users.sigma, w2, &mut value)?;
        } else {
            {
                let overlap_idx = shared_mut(&mut scratch.overlap_idx);
                overlap_idx.clear();
                overlap_idx.extend(self.train_overlap.iter().map(|&u| u as usize));
            }
            let mu_xo = tape.gather_rows_shared(enc_x.users.mu, &scratch.overlap_idx)?;
            let sig_xo = tape.gather_rows_shared(enc_x.users.sigma, &scratch.overlap_idx)?;
            add_kl(tape, mu_xo, sig_xo, w1, &mut value)?;
            let mu_yo = tape.gather_rows_shared(enc_y.users.mu, &scratch.overlap_idx)?;
            let sig_yo = tape.gather_rows_shared(enc_y.users.sigma, &scratch.overlap_idx)?;
            add_kl(tape, mu_yo, sig_yo, w2, &mut value)?;
        }
        // Item minimality always applies (items appear in both regularizers).
        add_kl(tape, enc_x.items.mu, enc_x.items.sigma, w1, &mut value)?;
        add_kl(tape, enc_y.items.mu, enc_y.items.sigma, w2, &mut value)?;
        Ok(value)
    }

    /// Builds the contrastive regularizer over overlap users (Eq. 14).
    fn contrastive_term(
        &self,
        tape: &mut Tape,
        enc_x: &DomainEncoding,
        enc_y: &DomainEncoding,
        rng: &mut StdRng,
        scratch: &mut StepScratch,
    ) -> Result<f32> {
        if !self.config.variant.use_contrastive() || self.train_overlap.len() < 2 {
            return Ok(0.0);
        }
        let n_pairs;
        {
            let users = &mut scratch.contrastive_users;
            users.clear();
            users.extend_from_slice(&self.train_overlap);
            shuffle_in_place(rng, users);
            users.truncate(self.config.contrastive_batch);
            n_pairs = users.len();
            let idx = shared_mut(&mut scratch.contrastive_idx);
            idx.clear();
            idx.extend(users.iter().map(|&u| u as usize));
            // Negative partners: a rotation of the batch guarantees a mismatch
            // for every pair (the batch has at least 2 distinct users).
            let partner = shared_mut(&mut scratch.contrastive_partner);
            partner.clear();
            partner.extend_from_slice(idx);
            partner.rotate_left(1);
        }

        let zx = tape.gather_rows_shared(enc_x.users.z, &scratch.contrastive_idx)?;
        let zy_pos = tape.gather_rows_shared(enc_y.users.z, &scratch.contrastive_idx)?;
        let zy_neg = tape.gather_rows_shared(enc_y.users.z, &scratch.contrastive_partner)?;

        let pos_in = tape.concat_cols(zx, zy_pos)?;
        let neg_in = tape.concat_cols(zx, zy_neg)?;
        let all_in = tape.concat_rows(pos_in, neg_in)?;
        let logits = self.discriminator.forward(tape, &self.params, all_in)?;
        // Aligned pairs first, then the rotated (mismatched) pairs.
        let mut labels = tape.scratch(2 * n_pairs, 1);
        labels.as_mut_slice()[..n_pairs].fill(1.0);
        labels.as_mut_slice()[n_pairs..].fill(0.0);
        let bce = tape.bce_with_logits(logits, labels)?;
        let weighted = tape.scale(bce, self.config.contrastive_weight)?;
        let value = tape.value(weighted)?.scalar_value()?;
        scratch.losses.push(weighted);
        Ok(value)
    }

    /// Builds the full training objective for one pair of edge batches and
    /// returns the loss variable together with its breakdown.
    ///
    /// Takes `&mut self` only for the reusable [`StepScratch`] buffers; the
    /// parameters and graph state are not modified.
    pub fn loss(
        &mut self,
        tape: &mut Tape,
        x_batch: &EdgeBatch,
        y_batch: &EdgeBatch,
        rng: &mut StdRng,
    ) -> Result<(Var, LossBreakdown)> {
        let mut scratch = self.scratch.take().unwrap_or_default();
        let result = self.loss_with_scratch(tape, x_batch, y_batch, rng, &mut scratch);
        self.scratch = Some(scratch);
        result
    }

    fn loss_with_scratch(
        &self,
        tape: &mut Tape,
        x_batch: &EdgeBatch,
        y_batch: &EdgeBatch,
        rng: &mut StdRng,
        scratch: &mut StepScratch,
    ) -> Result<(Var, LossBreakdown)> {
        let mut enc_rng_x = component_rng(rng.gen::<u64>(), "encode-x");
        let mut enc_rng_y = component_rng(rng.gen::<u64>(), "encode-y");
        let enc_x = self.encode_domain(tape, DomainId::X, Some(&mut enc_rng_x))?;
        let enc_y = self.encode_domain(tape, DomainId::Y, Some(&mut enc_rng_y))?;

        scratch.losses.clear();
        let minimality = self.minimality_terms(tape, &enc_x, &enc_y, scratch)?;
        // Reconstruction of domain X interactions: overlap users are encoded
        // by domain Y (cross term of L_{o2X}), the rest by domain X itself.
        let (cross_x, in_x) = self.reconstruction_terms(tape, x_batch, &enc_x, &enc_y, &enc_x, scratch, 0)?;
        // Reconstruction of domain Y interactions (L_{o2Y} and L_{y2Y}).
        let (cross_y, in_y) = self.reconstruction_terms(tape, y_batch, &enc_y, &enc_x, &enc_y, scratch, 1)?;
        let contrastive = self.contrastive_term(tape, &enc_x, &enc_y, rng, scratch)?;

        let mut total = scratch.losses[0];
        for &term in &scratch.losses[1..] {
            total = tape.add(total, term)?;
        }
        let breakdown = LossBreakdown {
            total: tape.value(total)?.scalar_value()?,
            minimality,
            reconstruction: cross_x + in_x + cross_y + in_y,
            contrastive,
        };
        Ok((total, breakdown))
    }

    /// Deterministic (mean) embeddings for ranking.
    pub fn infer_embeddings(&self) -> Result<CdribEmbeddings> {
        let mut tape = Tape::new();
        let enc_x = self.encode_domain(&mut tape, DomainId::X, None)?;
        let enc_y = self.encode_domain(&mut tape, DomainId::Y, None)?;
        Ok(CdribEmbeddings {
            x_users: tape.value(enc_x.users.mu)?.clone(),
            x_items: tape.value(enc_x.items.mu)?.clone(),
            y_users: tape.value(enc_y.users.mu)?.clone(),
            y_items: tape.value(enc_y.items.mu)?.clone(),
        })
    }

    /// Samples one epoch of edge batches for both domains. The two domains
    /// have different interaction counts, so the shorter one is cycled.
    ///
    /// Allocating convenience wrapper around
    /// [`CdribModel::make_batches_into`]; steady-state training loops (the
    /// trainer, `step_perf`) hold two [`EpochBatches`] and refill them
    /// instead.
    pub fn make_batches(&self, scenario: &CdrScenario, rng: &mut StdRng) -> Result<Vec<(EdgeBatch, EdgeBatch)>> {
        let (mut x, mut y) = (EpochBatches::new(), EpochBatches::new());
        self.make_batches_into(scenario, rng, &mut x, &mut y)?;
        Ok(x.batches().iter().cloned().zip(y.batches().iter().cloned()).collect())
    }

    /// Refills `x`/`y` with one epoch of edge batches per domain, reusing
    /// all per-batch storage of previous epochs (zero allocator requests in
    /// steady state; enforced by `tests/alloc_regression.rs`). Each storage
    /// ends up with `batches_per_epoch` batches, or fewer when a degenerate
    /// domain has fewer training edges than that — step loops must iterate
    /// the zip of the two storages, not assume the configured count.
    pub fn make_batches_into(
        &self,
        scenario: &CdrScenario,
        rng: &mut StdRng,
        x: &mut EpochBatches,
        y: &mut EpochBatches,
    ) -> Result<()> {
        let n_batches = self.config.batches_per_epoch;
        make_domain_batches_into(&scenario.x.train, n_batches, self.config.neg_ratio, rng, x)?;
        make_domain_batches_into(&scenario.y.train, n_batches, self.config.neg_ratio, rng, y)?;
        Ok(())
    }
}

/// Copies a label slice into a pooled `n x 1` tape buffer so the label
/// tensor's storage is recycled across steps.
fn pooled_column(tape: &mut Tape, values: &[f32]) -> Tensor {
    let mut col = tape.scratch(values.len(), 1);
    col.as_mut_slice().copy_from_slice(values);
    col
}

/// Splits a domain's training edges into `n_batches` shuffled batches with
/// negatives, refilling `storage` in place.
fn make_domain_batches_into(
    graph: &BipartiteGraph,
    n_batches: usize,
    neg_ratio: usize,
    rng: &mut StdRng,
    storage: &mut EpochBatches,
) -> Result<()> {
    let batch_size = graph.n_edges().div_ceil(n_batches).max(1);
    let batcher = cdrib_data::EdgeBatcher::new(batch_size, neg_ratio)?;
    batcher.epoch_into(graph, rng, storage)?;
    // The division can produce one extra small batch; merge it into the last
    // full batch so every epoch has exactly `n_batches` steps.
    while storage.len() > n_batches {
        storage.merge_tail();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny_scenario() -> CdrScenario {
        build_preset(ScenarioKind::GameVideo, Scale::Tiny, 21).unwrap()
    }

    #[test]
    fn model_construction_and_shapes() {
        let scenario = tiny_scenario();
        let config = CdribConfig::fast_test();
        let model = CdribModel::new(&config, &scenario).unwrap();
        assert!(model.num_parameters() > 1000);
        let emb = model.infer_embeddings().unwrap();
        assert_eq!(emb.x_users.shape(), (scenario.x.n_users, config.dim));
        assert_eq!(emb.y_items.shape(), (scenario.y.n_items, config.dim));
        assert!(emb.x_users.all_finite());
        // scorer adapters exist
        let _scorer = emb.scorer();
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let scenario = tiny_scenario();
        let mut bad = CdribConfig::fast_test();
        bad.dim = 0;
        assert!(CdribModel::new(&bad, &scenario).is_err());
        let mut no_overlap = scenario.clone();
        no_overlap.train_overlap_users.clear();
        assert!(CdribModel::new(&CdribConfig::fast_test(), &no_overlap).is_err());
    }

    #[test]
    fn loss_decreases_over_a_few_steps() {
        use cdrib_tensor::{Adam, Optimizer};
        let scenario = tiny_scenario();
        let config = CdribConfig::fast_test();
        let mut model = CdribModel::new(&config, &scenario).unwrap();
        let mut opt = Adam::with_defaults(config.learning_rate);
        let mut rng = component_rng(config.seed, "train");
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            let batches = model.make_batches(&scenario, &mut rng).unwrap();
            for (xb, yb) in &batches {
                model.params_mut().zero_grad();
                let mut tape = Tape::new();
                let (loss, breakdown) = model.loss(&mut tape, xb, yb, &mut rng).unwrap();
                assert!(breakdown.total.is_finite());
                assert!(breakdown.minimality >= 0.0);
                assert!(breakdown.reconstruction > 0.0);
                let value = {
                    let params = model.params_mut();
                    tape.backward(loss, params).unwrap()
                };
                opt.step(model.params_mut()).unwrap();
                if first.is_none() {
                    first = Some(value);
                }
                last = value;
            }
        }
        assert!(
            last < first.unwrap(),
            "loss should decrease: first {:?} last {last}",
            first
        );
        assert!(model.params().all_finite());
    }

    #[test]
    fn ablation_variants_change_the_objective() {
        let scenario = tiny_scenario();
        let mut rng = component_rng(3, "ablation");
        let config = CdribConfig::fast_test();
        let mut full = CdribModel::new(&config, &scenario).unwrap();
        let mut wo_con = CdribModel::new(
            &config.with_variant(crate::config::CdribVariant::WithoutContrastive),
            &scenario,
        )
        .unwrap();
        let mut wo_both = CdribModel::new(
            &config.with_variant(crate::config::CdribVariant::WithoutInDomainAndContrastive),
            &scenario,
        )
        .unwrap();
        let batches = full.make_batches(&scenario, &mut rng).unwrap();
        let (xb, yb) = &batches[0];

        let mut t1 = Tape::new();
        let mut r1 = component_rng(9, "s");
        let (_, b_full) = full.loss(&mut t1, xb, yb, &mut r1).unwrap();
        assert!(b_full.contrastive > 0.0);

        let mut t2 = Tape::new();
        let mut r2 = component_rng(9, "s");
        let (_, b_wo_con) = wo_con.loss(&mut t2, xb, yb, &mut r2).unwrap();
        assert_eq!(b_wo_con.contrastive, 0.0);

        let mut t3 = Tape::new();
        let mut r3 = component_rng(9, "s");
        let (_, b_wo_both) = wo_both.loss(&mut t3, xb, yb, &mut r3).unwrap();
        assert_eq!(b_wo_both.contrastive, 0.0);
        // Without the in-domain term, fewer interactions are reconstructed.
        assert!(b_wo_both.reconstruction < b_wo_con.reconstruction + 1e-6);
    }

    #[test]
    fn overlap_list_can_be_replaced() {
        let scenario = tiny_scenario();
        let config = CdribConfig::fast_test();
        let mut model = CdribModel::new(&config, &scenario).unwrap();
        let reduced: Vec<u32> = scenario.train_overlap_users.iter().copied().take(5).collect();
        model.set_train_overlap(&reduced);
        let mut rng = component_rng(1, "x");
        let batches = model.make_batches(&scenario, &mut rng).unwrap();
        assert_eq!(batches.len(), config.batches_per_epoch);
        let (xb, yb) = &batches[0];
        let mut tape = Tape::new();
        let (_, breakdown) = model.loss(&mut tape, xb, yb, &mut rng).unwrap();
        assert!(breakdown.total.is_finite());
    }
}
