//! Open-loop load generator for the batched TCP serving front-end.
//!
//! `serve_perf` measures the engine **closed-loop** (the caller waits for
//! each batch, so offered load adapts to service rate and queueing delay is
//! invisible). This binary measures the *server* the way production load
//! arrives: **open-loop** Poisson arrivals at a fixed offered rate, with
//! latency taken from each request's *scheduled* arrival time — late sends
//! count against the server (no coordinated omission).
//!
//! Phases, in order:
//!
//! 1. **Parity gate** — every server response must be bitwise identical
//!    (item ids and score bits) to a direct [`Recommender`] call on an
//!    identically-seeded local engine. Hard failure otherwise.
//! 2. **Closed-loop baseline** — one connection, one request in flight:
//!    the single-request-per-connection throughput the coalescer must beat.
//! 3. **Saturation blast** — all requests written as fast as the socket
//!    accepts; the served-response rate is the coalesced service capacity.
//!    The `--min-speedup` gate (default 5x) compares it to the baseline.
//! 4. **Open-loop sweep** — Poisson arrivals at 0.25/0.5/0.8x saturation
//!    plus an **overload** point at 1.5x, reporting p50/p99/p999 over
//!    *accepted* requests and the shed count. Overload must shed (bounded
//!    queues working) while accepted-p99 stays bounded.
//! 5. **Hot reload** — `IngestDelta` frames land mid-load; every in-flight
//!    request must still be answered and the epoch must advance.
//!
//! Results merge into `BENCH_serve.json` as the `"server"` section. By
//! default the server runs in-process ([`Server::spawn`]); `--addr` points
//! at an external `cdrib-served` (the CI smoke job does this) which must
//! have been booted with the same `--preset`/`--seed` for the parity gate
//! to be meaningful.

use cdrib_bench::Args;
use cdrib_data::{CdrScenario, Direction, DomainId};
use cdrib_graph::GraphDelta;
use cdrib_serve::net::preset_engine;
use cdrib_serve::proto::{self, ClientMsg, FrameReader, IngestReq, RecommendReq, ServerMsg};
use cdrib_serve::recommender::{Recommender, Request};
use cdrib_serve::topk::Recommendation;
use cdrib_serve::{Client, Server, ServerConfig};
use cdrib_tensor::rng::component_rng;
use rand::Rng;
use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn bitwise_equal(a: &[Recommendation], b: &[Recommendation]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.item == y.item && x.score.to_bits() == y.score.to_bits())
}

/// Deterministic request mix over both directions (same recipe regardless
/// of phase sizes, so parity and load phases exercise the same space).
fn request_mix(scenario: &CdrScenario, n: usize, seed: u64) -> Vec<Request> {
    let mut rng = component_rng(seed, "load-gen-mix");
    (0..n)
        .map(|i| {
            let direction = if i % 2 == 0 {
                Direction::X_TO_Y
            } else {
                Direction::Y_TO_X
            };
            let bound = match direction.source {
                DomainId::X => scenario.x.n_users,
                DomainId::Y => scenario.y.n_users,
            } as u32;
            Request {
                direction,
                user: rng.gen_range(0..bound),
                k: 10,
            }
        })
        .collect()
}

fn encode_recommend(req_id: u64, request: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    proto::write_frame(
        &mut buf,
        &ClientMsg::Recommend(RecommendReq {
            req_id,
            direction: request.direction,
            user: request.user,
            k: request.k as u32,
        }),
    );
    buf
}

/// Either an in-process [`Server`] or an externally-booted `cdrib-served`.
enum ServerHandle {
    InProcess(Server),
    External(String),
}

impl ServerHandle {
    fn addr(&self) -> String {
        match self {
            ServerHandle::InProcess(s) => s.addr().to_string(),
            ServerHandle::External(a) => a.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Phase 1: parity gate
// ---------------------------------------------------------------------------

fn parity_gate(addr: &str, reference: &mut Recommender, requests: &[Request]) {
    let (mut client, hello) = Client::connect(addr).expect("parity: connect");
    let mut expect = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let got = client.recommend(i as u64, request).expect("parity: round trip");
        reference
            .recommend(request, &mut expect)
            .expect("parity: reference call");
        match got {
            ServerMsg::Recommendations(ok) => {
                assert_eq!(ok.req_id, i as u64, "parity: response out of order");
                assert!(
                    bitwise_equal(&ok.recs, &expect),
                    "parity gate FAILED at request {i} ({request:?}): server {:?} != reference {expect:?}",
                    ok.recs
                );
            }
            other => panic!("parity: unexpected response {other:?}"),
        }
    }
    eprintln!(
        "parity: {} requests bitwise-identical to direct engine calls (server epoch {})",
        requests.len(),
        hello.epoch
    );
}

// ---------------------------------------------------------------------------
// Phase 2: closed-loop baseline
// ---------------------------------------------------------------------------

struct ClosedLoop {
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn closed_loop(addr: &str, requests: &[Request]) -> ClosedLoop {
    let (mut client, _) = Client::connect(addr).expect("closed-loop: connect");
    let mut lat_us = Vec::with_capacity(requests.len());
    let start = Instant::now();
    for (i, request) in requests.iter().enumerate() {
        let t0 = Instant::now();
        match client.recommend(i as u64, request).expect("closed-loop: round trip") {
            ServerMsg::Recommendations(_) => lat_us.push(t0.elapsed().as_secs_f64() * 1e6),
            other => panic!("closed-loop: unexpected response {other:?}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    ClosedLoop {
        rps: requests.len() as f64 / elapsed,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
    }
}

// ---------------------------------------------------------------------------
// Shared reader: drains responses until `expected` arrive (or timeout)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ConnOutcome {
    /// Response latencies (µs) of served requests, from scheduled arrival.
    lat_us: Vec<f64>,
    served: u64,
    shed: u64,
    errors: u64,
}

fn drain_responses(
    mut stream: TcpStream,
    expected: usize,
    start: Instant,
    schedule: Option<&[Duration]>,
    progress: Option<&std::sync::atomic::AtomicUsize>,
) -> ConnOutcome {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("reader: set timeout");
    let mut frames = FrameReader::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut out = ConnOutcome::default();
    let mut got = 0usize;
    'outer: while got < expected {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut => {
                eprintln!("reader: timed out with {got}/{expected} responses");
                break;
            }
            Err(e) => panic!("reader: {e}"),
        };
        frames.push_bytes(&chunk[..n]);
        loop {
            match frames.next_frame().expect("reader: bad frame") {
                None => continue 'outer,
                Some(body) => {
                    let now = Instant::now();
                    if let Some(p) = progress {
                        p.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    match proto::decode_server(body).expect("reader: bad message") {
                        ServerMsg::Recommendations(ok) => {
                            out.served += 1;
                            got += 1;
                            if let Some(sched) = schedule {
                                let due = start + sched[ok.req_id as usize];
                                out.lat_us.push(now.saturating_duration_since(due).as_secs_f64() * 1e6);
                            }
                        }
                        ServerMsg::Overloaded(_) => {
                            out.shed += 1;
                            got += 1;
                        }
                        ServerMsg::Error(e) => {
                            eprintln!("reader: server error {e:?}");
                            out.errors += 1;
                            got += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Phase 3: saturation blast
// ---------------------------------------------------------------------------

struct Saturation {
    served_rps: f64,
    served: u64,
    shed: u64,
}

fn saturation_blast(addr: &str, requests: &[Request], conns: usize, window: usize) -> Saturation {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let per_conn: Vec<Vec<Vec<u8>>> = (0..conns)
        .map(|c| {
            requests
                .iter()
                .enumerate()
                .filter(|(i, _)| i % conns == c)
                .enumerate()
                .map(|(local, (_, r))| encode_recommend(local as u64, r))
                .collect()
        })
        .collect();
    let clients: Vec<Client> = (0..conns)
        .map(|_| Client::connect(addr).expect("saturation: connect").0)
        .collect();
    let received: Vec<AtomicUsize> = (0..conns).map(|_| AtomicUsize::new(0)).collect();
    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((mut client, frames), recvd) in clients.into_iter().zip(&per_conn).zip(&received) {
            let read_half = client.try_clone_stream().expect("saturation: clone stream");
            let expected = frames.len();
            let reader = scope.spawn(move || drain_responses(read_half, expected, start, None, Some(recvd)));
            scope.spawn(move || {
                // Windowed pipelining: keep up to `window` requests in
                // flight per connection (sized to the admission-control
                // queue bound, so the coalescer's batch is always full but
                // nothing is shed) — that measures *served* capacity, not
                // how fast the server can say Overloaded.
                let mut buf = Vec::new();
                let mut sent = 0usize;
                while sent < frames.len() {
                    let inflight = sent - recvd.load(Ordering::Relaxed);
                    if inflight >= window {
                        std::thread::yield_now();
                        continue;
                    }
                    let burst = (window - inflight).min(16).min(frames.len() - sent);
                    buf.clear();
                    for f in &frames[sent..sent + burst] {
                        buf.extend_from_slice(f);
                    }
                    client.send_raw(&buf).expect("saturation: write");
                    sent += burst;
                }
            });
            handles.push(reader);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("saturation: reader"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let served: u64 = outcomes.iter().map(|o| o.served).sum();
    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    Saturation {
        served_rps: served as f64 / elapsed,
        served,
        shed,
    }
}

// ---------------------------------------------------------------------------
// Phase 4: open-loop Poisson sweep
// ---------------------------------------------------------------------------

struct OpenLoopPoint {
    offered_rps: f64,
    sent: usize,
    served: u64,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn open_loop(addr: &str, requests: &[Request], offered_rps: f64, conns: usize, seed: u64) -> OpenLoopPoint {
    // Poisson arrivals: exponential inter-arrival gaps by inverse CDF.
    let mut rng = component_rng(seed, "load-gen-arrivals");
    let mut t = 0.0f64;
    let arrivals: Vec<Duration> = (0..requests.len())
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / offered_rps;
            Duration::from_secs_f64(t)
        })
        .collect();
    // Round-robin across connections; req_id is the connection-local index
    // into that connection's schedule.
    let mut schedules: Vec<Vec<Duration>> = vec![Vec::new(); conns];
    let mut frames: Vec<Vec<Vec<u8>>> = vec![Vec::new(); conns];
    for (i, (request, due)) in requests.iter().zip(&arrivals).enumerate() {
        let c = i % conns;
        frames[c].push(encode_recommend(schedules[c].len() as u64, request));
        schedules[c].push(*due);
    }
    let clients: Vec<Client> = (0..conns)
        .map(|_| Client::connect(addr).expect("open-loop: connect").0)
        .collect();
    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((mut client, sched), conn_frames) in clients.into_iter().zip(&schedules).zip(&frames) {
            let read_half = client.try_clone_stream().expect("open-loop: clone stream");
            let expected = conn_frames.len();
            let reader = scope.spawn(move || drain_responses(read_half, expected, start, Some(sched), None));
            scope.spawn(move || {
                // Send every due frame in one write (catch-up batching keeps
                // the offered schedule honest even when sleep overshoots).
                let mut buf = Vec::new();
                let mut i = 0;
                while i < conn_frames.len() {
                    let now = start.elapsed();
                    if sched[i] <= now {
                        buf.clear();
                        while i < conn_frames.len() && sched[i] <= start.elapsed() {
                            buf.extend_from_slice(&conn_frames[i]);
                            i += 1;
                        }
                        client.send_raw(&buf).expect("open-loop: write");
                    } else {
                        std::thread::sleep(sched[i] - now);
                    }
                }
            });
            handles.push(reader);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop: reader"))
            .collect()
    });
    let mut lat_us: Vec<f64> = outcomes.iter().flat_map(|o| o.lat_us.iter().copied()).collect();
    lat_us.sort_by(f64::total_cmp);
    OpenLoopPoint {
        offered_rps,
        sent: requests.len(),
        served: outcomes.iter().map(|o| o.served).sum(),
        shed: outcomes.iter().map(|o| o.shed).sum(),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        p999_us: percentile(&lat_us, 0.999),
    }
}

// ---------------------------------------------------------------------------
// Phase 5: hot reload under load
// ---------------------------------------------------------------------------

struct HotReload {
    requests: usize,
    answered: u64,
    deltas: u64,
    epoch_before: u64,
    epoch_after: u64,
}

fn hot_reload(addr: &str, scenario: &CdrScenario, requests: &[Request], rate: f64, seed: u64) -> HotReload {
    let (mut control, hello) = Client::connect(addr).expect("hot-reload: connect control");
    let epoch_before = hello.epoch;
    // Paced single-connection recommend stream (uniform gaps are fine here;
    // the phase tests the epoch swap, not tail latency).
    let gap = Duration::from_secs_f64(1.0 / rate);
    let sched: Vec<Duration> = (0..requests.len()).map(|i| gap * (i as u32 + 1)).collect();
    let frames: Vec<Vec<u8>> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| encode_recommend(i as u64, r))
        .collect();
    let (mut client, _) = Client::connect(addr).expect("hot-reload: connect load");
    let read_half = client.try_clone_stream().expect("hot-reload: clone stream");
    let start = Instant::now();
    let mut rng = component_rng(seed, "load-gen-delta");
    let (outcome, deltas) = std::thread::scope(|scope| {
        let expected = frames.len();
        let reader = scope.spawn(move || drain_responses(read_half, expected, start, None, None));
        scope.spawn(|| {
            let mut i = 0;
            while i < frames.len() {
                let now = start.elapsed();
                if sched[i] <= now {
                    client.send_raw(&frames[i]).expect("hot-reload: write");
                    i += 1;
                } else {
                    std::thread::sleep(sched[i] - now);
                }
            }
        });
        // Two deltas land mid-stream: each appends one user + one item to
        // domain X with a fresh edge (and a second edge from an existing
        // user so the new item is reachable).
        let mut deltas_applied = 0u64;
        let base_user = scenario.x.n_users as u32;
        let base_item = scenario.x.n_items as u32;
        for d in 0..2u64 {
            std::thread::sleep(gap * (frames.len() as u32 / 3));
            let (next_user, next_item) = (base_user + d as u32, base_item + d as u32);
            let delta = GraphDelta {
                add_users: 1,
                add_items: 1,
                edges: vec![
                    (next_user, next_item),
                    (rng.gen_range(0..scenario.x.n_users as u32), next_item),
                ],
                ..GraphDelta::empty()
            };
            control
                .send(&ClientMsg::IngestDelta(IngestReq {
                    req_id: d,
                    domain: DomainId::X,
                    delta,
                }))
                .expect("hot-reload: send delta");
            match control.recv().expect("hot-reload: delta response") {
                ServerMsg::DeltaApplied(ok) => {
                    assert_eq!(ok.req_id, d);
                    deltas_applied += 1;
                }
                other => panic!("hot-reload: unexpected delta response {other:?}"),
            }
        }
        (reader.join().expect("hot-reload: reader"), deltas_applied)
    });
    control.send(&ClientMsg::Stats(99)).expect("hot-reload: stats");
    let stats_reply = control.recv().expect("hot-reload: stats response");
    let epoch_after = match stats_reply {
        ServerMsg::Stats(s) => s.epoch,
        other => panic!("hot-reload: unexpected stats response {other:?}"),
    };
    HotReload {
        requests: requests.len(),
        answered: outcome.served + outcome.shed + outcome.errors,
        deltas,
        epoch_before,
        epoch_after,
    }
}

// ---------------------------------------------------------------------------
// BENCH_serve.json merge
// ---------------------------------------------------------------------------

/// Replaces (or appends) the trailing `"server"` section of the bench JSON.
/// `serve_perf` owns everything before it; this binary owns the section and
/// always writes it last, so "cut at the marker, re-append" is exact.
fn merge_server_section(path: &str, section: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{\n}\n"));
    let marker = ",\n  \"server\":";
    let base = match text.find(marker) {
        Some(pos) => text[..pos].to_string(),
        None => {
            let end = text.rfind('}').expect("bench json: no closing brace");
            text[..end].trim_end().to_string()
        }
    };
    let joiner = if base.trim_end().ends_with('{') {
        "\n  "
    } else {
        ",\n  "
    };
    let merged = format!("{base}{joiner}\"server\": {section}\n}}\n");
    std::fs::write(path, merged).expect("bench json: write");
}

fn main() {
    let args = Args::from_env();
    let quick = args.get_or("quick", 0u64) == 1;
    let preset = args.get("preset").unwrap_or("tiny").to_string();
    let seed = args.get_or("seed", 42u64);
    let conns = args.get_or("conns", 2usize).max(1);
    let min_speedup = args.get_or("min-speedup", 5.0f64);
    let n_point = args.get_or("requests", if quick { 400 } else { 2000 });
    let out_path = args.get("bench-out").unwrap_or("BENCH_serve.json").to_string();

    let config = ServerConfig {
        max_batch: args.get_or("max-batch", 256),
        max_wait: Duration::from_micros(args.get_or("max-wait-us", 200)),
        queue_capacity: args.get_or("queue-cap", 128),
        workers: args.get_or("workers", ServerConfig::default().workers),
    };

    // The reference engine is always local; the serving engine is either the
    // in-process twin or an external `cdrib-served` booted with the same
    // preset + seed (parity gate checks they agree bitwise either way).
    let (mut reference, scenario) = preset_engine(&preset, seed).expect("reference engine");
    let handle = match args.get("addr") {
        Some(addr) => ServerHandle::External(addr.to_string()),
        None => {
            let (engine, _) = preset_engine(&preset, seed).expect("server engine");
            ServerHandle::InProcess(Server::spawn(engine, "127.0.0.1:0", config.clone()).expect("spawn server"))
        }
    };
    let addr = handle.addr();
    eprintln!("load_gen: target {addr} (preset {preset}, seed {seed}, {conns} conns)");

    // 1. Parity.
    let parity_requests = request_mix(&scenario, if quick { 32 } else { 128 }, seed ^ 1);
    parity_gate(&addr, &mut reference, &parity_requests);

    // 2. Closed-loop baseline.
    let cl_requests = request_mix(&scenario, if quick { 150 } else { 500 }, seed ^ 2);
    let cl = closed_loop(&addr, &cl_requests);
    eprintln!(
        "closed-loop: {:.0} req/s (p50 {:.0}us, p99 {:.0}us)",
        cl.rps, cl.p50_us, cl.p99_us
    );

    // 3. Saturation.
    let sat_requests = request_mix(&scenario, if quick { 2000 } else { 10000 }, seed ^ 3);
    let sat = saturation_blast(&addr, &sat_requests, conns, config.queue_capacity);
    let speedup = sat.served_rps / cl.rps;
    eprintln!(
        "saturation: {:.0} served/s ({} served, {} shed) = {speedup:.1}x closed-loop",
        sat.served_rps, sat.served, sat.shed
    );

    // 4. Open-loop sweep (last point is deliberate overload). Each point
    // offers load long enough (>=120ms) for queues to reach steady state —
    // a fixed request count at high rates would end before the bounded
    // queues even fill, making the overload point meaningless.
    let fractions = [0.25, 0.5, 0.8, 1.5];
    let mut points = Vec::new();
    for (pi, frac) in fractions.iter().enumerate() {
        let rate = sat.served_rps * frac;
        let n = n_point.max((rate * 0.12) as usize);
        let reqs = request_mix(&scenario, n, seed ^ (16 + pi as u64));
        let point = open_loop(&addr, &reqs, rate, conns, seed ^ (32 + pi as u64));
        eprintln!(
            "open-loop {:.2}x: offered {:.0}/s, served {}, shed {}, p50 {:.0}us p99 {:.0}us p999 {:.0}us",
            frac, point.offered_rps, point.served, point.shed, point.p50_us, point.p99_us, point.p999_us
        );
        points.push(point);
    }

    // 5. Hot reload at half saturation.
    let hr_requests = request_mix(&scenario, if quick { 200 } else { 600 }, seed ^ 4);
    let hr = hot_reload(
        &addr,
        &scenario,
        &hr_requests,
        (sat.served_rps * 0.5).max(500.0),
        seed ^ 5,
    );
    eprintln!(
        "hot-reload: {}/{} answered across {} deltas, epoch {} -> {}",
        hr.answered, hr.requests, hr.deltas, hr.epoch_before, hr.epoch_after
    );

    // Shut the server down (in-process always; external only on request,
    // which is how the CI smoke job reaps the booted binary).
    match handle {
        ServerHandle::InProcess(server) => {
            let stats = server.stats();
            eprintln!(
                "server: accepted {} served {} shed {} deltas {} batches {}",
                stats.accepted, stats.served, stats.shed, stats.deltas_applied, stats.batches
            );
            server.shutdown();
        }
        ServerHandle::External(_) => {
            if args.get_or("shutdown", 0u64) == 1 {
                let (mut c, _) = Client::connect(&addr).expect("shutdown: connect");
                c.send(&ClientMsg::Shutdown).expect("shutdown: send");
                match c.recv() {
                    Ok(ServerMsg::ShuttingDown) | Err(_) => {}
                    Ok(other) => panic!("shutdown: unexpected response {other:?}"),
                }
            }
        }
    }

    // Gates.
    let overload = points.last().expect("overload point");
    assert!(
        speedup >= min_speedup,
        "coalescing speedup gate FAILED: {speedup:.2}x < {min_speedup:.2}x"
    );
    assert!(
        overload.shed > 0,
        "overload gate FAILED: no sheds at {:.0} req/s offered",
        overload.offered_rps
    );
    assert!(
        overload.p99_us.is_finite() && overload.p99_us < 2_000_000.0,
        "overload gate FAILED: accepted p99 {:.0}us unbounded",
        overload.p99_us
    );
    assert!(
        hr.answered as usize == hr.requests && hr.deltas == 2 && hr.epoch_after > hr.epoch_before,
        "hot-reload gate FAILED: {}/{} answered, {} deltas, epoch {} -> {}",
        hr.answered,
        hr.requests,
        hr.deltas,
        hr.epoch_before,
        hr.epoch_after
    );
    eprintln!("gates: parity, {speedup:.1}x >= {min_speedup}x, overload shed, hot reload -- all passed");

    // JSON section.
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "    \"preset\": \"{preset}\",\n    \"seed\": {seed},\n    \"connections\": {conns},\n"
    ));
    s.push_str(&format!(
        "    \"config\": {{ \"max_batch\": {}, \"max_wait_us\": {}, \"queue_capacity\": {}, \"workers\": {} }},\n",
        config.max_batch,
        config.max_wait.as_micros(),
        config.queue_capacity,
        config.workers
    ));
    s.push_str("    \"parity\": \"bitwise\",\n");
    s.push_str(&format!(
        "    \"closed_loop\": {{ \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1} }},\n",
        cl.rps, cl.p50_us, cl.p99_us
    ));
    s.push_str(&format!(
        "    \"saturation\": {{ \"served_rps\": {:.1}, \"served\": {}, \"shed\": {}, \"speedup_vs_closed_loop\": {:.2} }},\n",
        sat.served_rps, sat.served, sat.shed, speedup
    ));
    s.push_str("    \"open_loop\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "      {{ \"offered_rps\": {:.1}, \"sent\": {}, \"served\": {}, \"shed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1} }}{}\n",
            p.offered_rps,
            p.sent,
            p.served,
            p.shed,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"hot_reload\": {{ \"requests\": {}, \"answered\": {}, \"deltas\": {}, \"epoch_before\": {}, \"epoch_after\": {} }}\n  }}",
        hr.requests, hr.answered, hr.deltas, hr.epoch_before, hr.epoch_after
    ));
    merge_server_section(&out_path, &s);
    eprintln!("load_gen: wrote server section to {out_path}");
}
