//! First-order optimizers.
//!
//! The paper trains CDRIB with Adam (§IV-B3); SGD (with optional momentum)
//! is provided for the matrix-factorisation baselines and tests.

use crate::error::{Result, TensorError};
use crate::kernels;
use crate::params::{ParamId, ParamSet};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Common interface of all optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in
    /// `params`, then leaves the gradients untouched (call
    /// [`ParamSet::zero_grad`] before the next forward pass).
    fn step(&mut self, params: &mut ParamSet) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules and sweeps).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum and decoupled
/// weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        for k in self.velocity.len()..params.len() {
            let v = params.value(ParamId(k));
            self.velocity.push(Tensor::zeros(v.rows(), v.cols()));
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) -> Result<()> {
        if self.lr <= 0.0 {
            return Err(TensorError::InvalidArgument {
                what: "Sgd::step",
                detail: format!("learning rate must be positive, got {}", self.lr),
            });
        }
        self.ensure_state(params);
        for k in 0..params.len() {
            let id = ParamId(k);
            if params.grad(id).shape() != params.value(id).shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "Sgd::step",
                    lhs: params.value(id).shape(),
                    rhs: params.grad(id).shape(),
                });
            }
            if self.momentum > 0.0 {
                // vel = momentum * vel + grad (+ weight_decay * value), then
                // value -= lr * vel — all in place, nothing cloned.
                let vel = &mut self.velocity[k];
                kernels::scale_add(self.momentum, vel.as_mut_slice(), params.grad(id).as_slice());
                if self.weight_decay > 0.0 {
                    vel.axpy(self.weight_decay, params.value(id))?;
                }
                params.value_mut(id).axpy(-self.lr, vel)?;
            } else {
                // value = (1 - lr * wd) * value - lr * grad
                let (value, grad) = params.value_and_grad(id);
                if self.weight_decay > 0.0 {
                    value.scale_in_place(1.0 - self.lr * self.weight_decay);
                }
                kernels::axpy(-self.lr, value.as_mut_slice(), grad.as_slice());
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight
/// decay (AdamW-style when `weight_decay > 0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the given hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Adam with the standard defaults (`beta1=0.9, beta2=0.999, eps=1e-8`).
    pub fn with_defaults(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        for k in self.first_moment.len()..params.len() {
            let v = params.value(ParamId(k));
            self.first_moment.push(Tensor::zeros(v.rows(), v.cols()));
            self.second_moment.push(Tensor::zeros(v.rows(), v.cols()));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) -> Result<()> {
        if self.lr <= 0.0 {
            return Err(TensorError::InvalidArgument {
                what: "Adam::step",
                detail: format!("learning rate must be positive, got {}", self.lr),
            });
        }
        if !(0.0..1.0).contains(&self.beta1) || !(0.0..1.0).contains(&self.beta2) {
            return Err(TensorError::InvalidArgument {
                what: "Adam::step",
                detail: format!("betas must lie in [0,1), got ({}, {})", self.beta1, self.beta2),
            });
        }
        self.ensure_state(params);
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for k in 0..params.len() {
            let id = ParamId(k);
            if params.grad(id).shape() != params.value(id).shape() {
                return Err(TensorError::ShapeMismatch {
                    op: "Adam::step",
                    lhs: params.value(id).shape(),
                    rhs: params.grad(id).shape(),
                });
            }
            let (value, grad) = params.value_and_grad(id);
            if self.weight_decay > 0.0 {
                // Decoupled (AdamW-style) decay, applied before the update:
                // value -= lr * wd * value, folded into one in-place scaling.
                value.scale_in_place(1.0 - self.lr * self.weight_decay);
            }
            kernels::adam_update(
                value.as_mut_slice(),
                grad.as_slice(),
                self.first_moment[k].as_mut_slice(),
                self.second_moment[k].as_mut_slice(),
                self.beta1,
                self.beta2,
                self.eps,
                self.lr,
                bias1,
                bias2,
            );
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises f(w) = sum((w - target)^2) and returns the final values.
    fn optimize<O: Optimizer>(mut opt: O, steps: usize) -> (f32, f32) {
        let mut params = ParamSet::new();
        let w = params
            .add("w", Tensor::from_vec(1, 2, vec![5.0, -5.0]).unwrap())
            .unwrap();
        let target = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let mut last_loss = f32::INFINITY;
        for _ in 0..steps {
            params.zero_grad();
            let mut tape = Tape::new();
            let wv = tape.param(&params, w);
            let tv = tape.constant(target.clone());
            let diff = tape.sub(wv, tv).unwrap();
            let sq = tape.mul(diff, diff).unwrap();
            let loss = tape.sum(sq).unwrap();
            last_loss = tape.backward(loss, &mut params).unwrap();
            opt.step(&mut params).unwrap();
        }
        let v = params.value(w);
        let _ = last_loss;
        (v.get(0, 0), v.get(0, 1))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (a, b) = optimize(Sgd::new(0.1, 0.0, 0.0), 200);
        assert!((a - 1.0).abs() < 1e-3, "{a}");
        assert!((b - 2.0).abs() < 1e-3, "{b}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let (a, b) = optimize(Sgd::new(0.05, 0.9, 0.0), 200);
        assert!((a - 1.0).abs() < 1e-2);
        assert!((b - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (a, b) = optimize(Adam::with_defaults(0.2), 300);
        assert!((a - 1.0).abs() < 1e-2, "{a}");
        assert!((b - 2.0).abs() < 1e-2, "{b}");
    }

    #[test]
    fn adam_step_matches_scalar_reference() {
        // The production path (fused kernel + in-place decoupled decay,
        // driven through ParamSet) against a plain scalar per-element Adam,
        // over several steps with fresh gradients each step.
        let (lr, beta1, beta2, eps, wd) = (0.05f32, 0.9f32, 0.999f32, 1e-8f32, 0.01f32);
        let n = 11;
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::from_vec(1, n, init.clone()).unwrap()).unwrap();
        let mut opt = Adam::new(lr, beta1, beta2, eps, wd);

        let mut ref_value = init;
        let mut ref_m = vec![0.0f32; n];
        let mut ref_v = vec![0.0f32; n];
        for t in 1..=5u32 {
            let grads: Vec<f32> = (0..n).map(|i| ((i as f32 + t as f32 * 1.3).cos()) * 0.5).collect();
            *params.grad_mut(w) = Tensor::from_vec(1, n, grads.clone()).unwrap();
            opt.step(&mut params).unwrap();

            let bias1 = 1.0 - beta1.powi(t as i32);
            let bias2 = 1.0 - beta2.powi(t as i32);
            for i in 0..n {
                ref_value[i] -= lr * wd * ref_value[i];
                ref_m[i] = beta1 * ref_m[i] + (1.0 - beta1) * grads[i];
                ref_v[i] = beta2 * ref_v[i] + (1.0 - beta2) * grads[i] * grads[i];
                ref_value[i] -= lr * (ref_m[i] / bias1) / ((ref_v[i] / bias2).sqrt() + eps);
            }
        }
        assert_eq!(opt.steps(), 5);
        for (i, (&got, &want)) in params.value(w).as_slice().iter().zip(ref_value.iter()).enumerate() {
            assert!(
                (got - want).abs() < 1e-6 + 1e-5 * want.abs(),
                "element {i}: fused {got} vs scalar reference {want}"
            );
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With a pure-decay objective (zero gradient), weights should shrink.
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 4, 4.0)).unwrap();
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8, 0.5);
        for _ in 0..10 {
            params.zero_grad();
            opt.step(&mut params).unwrap();
        }
        assert!(params.value(w).get(0, 0) < 4.0);
    }

    #[test]
    fn invalid_hyperparameters_are_rejected() {
        let mut params = ParamSet::new();
        params.add("w", Tensor::zeros(1, 1)).unwrap();
        assert!(Sgd::new(0.0, 0.0, 0.0).step(&mut params).is_err());
        assert!(Adam::new(-1.0, 0.9, 0.999, 1e-8, 0.0).step(&mut params).is_err());
        assert!(Adam::new(0.1, 1.5, 0.999, 1e-8, 0.0).step(&mut params).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut adam = Adam::with_defaults(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
        adam.set_learning_rate(0.005);
        assert_eq!(adam.learning_rate(), 0.005);
        assert_eq!(adam.steps(), 0);
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        sgd.set_learning_rate(0.2);
        assert_eq!(sgd.learning_rate(), 0.2);
    }

    #[test]
    fn adam_handles_parameters_added_late() {
        // Optimizer state grows lazily when new parameters are registered
        // between steps (used by tests that build models incrementally).
        let mut params = ParamSet::new();
        let a = params.add("a", Tensor::full(1, 1, 1.0)).unwrap();
        let mut opt = Adam::with_defaults(0.1);
        *params.grad_mut(a) = Tensor::full(1, 1, 1.0);
        opt.step(&mut params).unwrap();
        let b = params.add("b", Tensor::full(1, 1, 1.0)).unwrap();
        *params.grad_mut(b) = Tensor::full(1, 1, 1.0);
        opt.step(&mut params).unwrap();
        assert!(params.value(b).get(0, 0) < 1.0);
    }
}
