//! Wire-protocol robustness: every message type round-trips through the
//! framed codec, and corrupted frames — truncations, bit flips, oversized
//! length prefixes — are rejected with **typed** errors, never a panic or a
//! silently wrong decode.
//!
//! Round-trip equality is asserted on the *re-encoded bytes* (encode →
//! frame → decode → encode again), which is stricter than structural
//! equality and sidesteps `f32` NaN comparison entirely: random score bits
//! are legal on the wire even when NaN never leaves the engine.

use cdrib::data::{Direction, DomainId};
use cdrib::graph::GraphDelta;
use cdrib::serve::proto::{
    self, ClientMsg, DeltaOk, ErrorCode, ErrorMsg, FrameReader, HelloOk, HelloReq, IngestReq, ProtoError, RecommendOk,
    RecommendReq, ServerMsg, StatsOk, MAX_FRAME_BODY,
};
use cdrib::serve::Recommendation;
use proptest::prelude::*;

const LEN_BYTES: usize = 4;

fn direction_from(selector: u32) -> Direction {
    if selector.is_multiple_of(2) {
        Direction::X_TO_Y
    } else {
        Direction::Y_TO_X
    }
}

fn domain_from(selector: u32) -> DomainId {
    if selector.is_multiple_of(2) {
        DomainId::X
    } else {
        DomainId::Y
    }
}

fn error_code_from(selector: u32) -> ErrorCode {
    match selector % 5 {
        0 => ErrorCode::UserOutOfRange,
        1 => ErrorCode::EmptyCatalogue,
        2 => ErrorCode::DeltaRejected,
        3 => ErrorCode::UnsupportedVersion,
        _ => ErrorCode::BadRequest,
    }
}

/// Builds one client message of every variant, driven by raw draws.
fn client_msg(variant: u32, a: u64, b: u32, edges: Vec<(u32, u32)>, text: Vec<u8>) -> ClientMsg {
    match variant % 5 {
        0 => ClientMsg::Hello(HelloReq { version: b }),
        1 => ClientMsg::Recommend(RecommendReq {
            req_id: a,
            direction: direction_from(b),
            user: b,
            k: (b % 64) + 1,
        }),
        2 => ClientMsg::IngestDelta(IngestReq {
            req_id: a,
            domain: domain_from(b),
            delta: GraphDelta {
                add_users: (b % 7) as usize,
                add_items: text.len(),
                remove_edges: edges.iter().rev().take(2).copied().collect(),
                erase_users: edges.iter().map(|&(u, _)| u ^ b).take(3).collect(),
                delist_items: text.iter().map(|&t| t as u32).collect(),
                edges,
            },
        }),
        3 => ClientMsg::Stats(a),
        _ => ClientMsg::Shutdown,
    }
}

/// Builds one server message of every variant.
fn server_msg(variant: u32, a: u64, b: u32, scores: Vec<u32>, text: Vec<u8>) -> ServerMsg {
    match variant % 7 {
        0 => ServerMsg::HelloOk(HelloOk { version: b, epoch: a }),
        1 => ServerMsg::Recommendations(RecommendOk {
            req_id: a,
            epoch: a ^ 1,
            recs: scores
                .iter()
                .enumerate()
                .map(|(i, &bits)| Recommendation {
                    item: i as u32,
                    score: f32::from_bits(bits),
                })
                .collect(),
        }),
        2 => ServerMsg::DeltaApplied(DeltaOk {
            req_id: a,
            epoch: a.wrapping_add(1),
            users_added: u64::from(b % 5),
            items_added: u64::from(b % 3),
            edges_added: u64::from(b),
            wal_seq: a ^ 7,
        }),
        3 => ServerMsg::Stats(StatsOk {
            req_id: a,
            epoch: 3,
            accepted: a,
            served: a / 2,
            shed: u64::from(b),
            deltas_applied: 1,
            batches: 9,
            connections: 2,
        }),
        4 => ServerMsg::Overloaded(a),
        5 => ServerMsg::Error(ErrorMsg {
            req_id: a,
            code: error_code_from(b),
            detail: String::from_utf8_lossy(&text).into_owned(),
        }),
        _ => ServerMsg::ShuttingDown,
    }
}

fn frame_of(encode: impl Fn(&mut Vec<u8>)) -> Vec<u8> {
    let mut buf = Vec::new();
    encode(&mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every client message variant survives encode → frame → decode →
    /// re-encode bitwise.
    #[test]
    fn client_messages_round_trip(
        variant in 0u32..5,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        edges in collection::vec((0u32..1000, 0u32..1000), 0..16),
        text in collection::vec(97u8..123, 0..12),
    ) {
        let msg = client_msg(variant, a, b, edges, text);
        let frame = frame_of(|buf| proto::write_frame(buf, &msg));
        let (consumed, body) = proto::split_frame(&frame).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, frame.len());
        let decoded = proto::decode_client(body).unwrap();
        let reframed = frame_of(|buf| proto::write_frame(buf, &decoded));
        prop_assert_eq!(frame, reframed);
    }

    /// Every server message variant survives the same loop.
    #[test]
    fn server_messages_round_trip(
        variant in 0u32..7,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        scores in collection::vec(0u32..u32::MAX, 0..24),
        text in collection::vec(32u8..127, 0..20),
    ) {
        let msg = server_msg(variant, a, b, scores, text);
        let frame = frame_of(|buf| proto::write_frame(buf, &msg));
        let (consumed, body) = proto::split_frame(&frame).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, frame.len());
        let decoded = proto::decode_server(body).unwrap();
        let reframed = frame_of(|buf| proto::write_frame(buf, &decoded));
        prop_assert_eq!(frame, reframed);
    }

    /// A stream of concatenated frames fed to [`FrameReader`] in arbitrary
    /// chunk sizes reassembles every frame, in order, bitwise.
    #[test]
    fn frame_reader_reassembles_arbitrary_chunking(
        variants in collection::vec(0u32..7, 1..6),
        a in 0u64..u64::MAX,
        chunk in 1usize..40,
    ) {
        let mut stream = Vec::new();
        let mut bodies = Vec::new();
        for (i, &v) in variants.iter().enumerate() {
            let msg = server_msg(v, a ^ i as u64, i as u32, vec![i as u32; i], vec![b'x'; i]);
            let frame = frame_of(|buf| proto::write_frame(buf, &msg));
            bodies.push(frame[LEN_BYTES..frame.len() - 8].to_vec());
            stream.extend_from_slice(&frame);
        }
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.push_bytes(piece);
            while let Some(body) = reader.next_frame().unwrap() {
                seen.push(body.to_vec());
            }
        }
        prop_assert_eq!(seen, bodies);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Every strict prefix of a valid frame is *incomplete* (`Ok(None)`) —
    /// truncation never produces an error, a panic, or a bogus decode.
    #[test]
    fn truncated_frames_are_incomplete(
        variant in 0u32..5,
        a in 0u64..u64::MAX,
        edges in collection::vec((0u32..100, 0u32..100), 0..8),
    ) {
        let msg = client_msg(variant, a, 3, edges, vec![]);
        let frame = frame_of(|buf| proto::write_frame(buf, &msg));
        for cut in 0..frame.len() {
            prop_assert!(matches!(proto::split_frame(&frame[..cut]), Ok(None)), "cut={}", cut);
        }
    }

    /// A single flipped bit anywhere in the frame can never yield a
    /// successfully decoded frame: the outcome is a typed error
    /// (checksum/size) or "incomplete" when the flip inflates the length
    /// prefix.
    #[test]
    fn bit_flips_are_rejected(
        variant in 0u32..7,
        a in 0u64..u64::MAX,
        scores in collection::vec(0u32..u32::MAX, 0..8),
        flip_at in 0usize..4096,
    ) {
        let msg = server_msg(variant, a, 9, scores, vec![b'e'; 4]);
        let mut frame = frame_of(|buf| proto::write_frame(buf, &msg));
        let byte = flip_at / 8 % frame.len();
        frame[byte] ^= 1 << (flip_at % 8);
        match proto::split_frame(&frame) {
            Ok(Some(_)) => prop_assert!(false, "corrupted frame decoded (flip at byte {})", byte),
            Ok(None) => {} // length grew: frame now looks incomplete
            Err(ProtoError::ChecksumMismatch { .. }) | Err(ProtoError::FrameTooLarge { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }
}

/// A length prefix beyond the cap is rejected *before* any buffering, even
/// though the full body never arrives.
#[test]
fn oversized_length_prefix_is_rejected_eagerly() {
    let len = (MAX_FRAME_BODY + 1) as u32;
    let mut frame = len.to_le_bytes().to_vec();
    frame.extend_from_slice(&[0u8; 64]); // far short of the claimed body
    match proto::split_frame(&frame) {
        Err(ProtoError::FrameTooLarge { len, max }) => {
            assert_eq!(len, (MAX_FRAME_BODY + 1) as u64);
            assert_eq!(max, MAX_FRAME_BODY);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // The incremental reader rejects it identically.
    let mut reader = FrameReader::new();
    reader.push_bytes(&frame);
    assert!(matches!(reader.next_frame(), Err(ProtoError::FrameTooLarge { .. })));
}

/// An unknown enum tag inside a checksum-valid frame surfaces as a typed
/// decode error.
#[test]
fn unknown_variant_tag_is_a_typed_decode_error() {
    let mut body = Vec::new();
    serde::write_variant_tag(&mut body, 0xDEAD_BEEF);
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    let sum = cdrib::tensor::artifact::fnv1a(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    let (_, parsed) = proto::split_frame(&frame).unwrap().expect("frame complete");
    assert!(matches!(proto::decode_client(parsed), Err(ProtoError::Decode(_))));
    assert!(matches!(proto::decode_server(parsed), Err(ProtoError::Decode(_))));
}
