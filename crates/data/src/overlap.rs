//! Overlap-ratio manipulation for the robustness study of Table VIII.
//!
//! The paper varies the proportion of overlapping users that are *usable as
//! bridges* during training (20 % ... 100 %). In this reproduction the two
//! domains only share information through the list of training overlap users
//! (the cross-domain IB regularizer and the contrastive regularizer both
//! iterate over that list; EMCDR-style baselines fit their mapping function
//! on it), so reducing the ratio simply subsamples
//! [`CdrScenario::train_overlap_users`]. Users dropped from the list keep
//! their interactions in both domains — the model just no longer *knows*
//! that they are the same person.

use crate::error::{DataError, Result};
use crate::scenario::CdrScenario;
use cdrib_tensor::rng::{component_rng, shuffle_in_place};

/// Returns a copy of `scenario` where only `ratio` of the training overlap
/// users remain marked as overlapping.
pub fn with_overlap_ratio(scenario: &CdrScenario, ratio: f64, seed: u64) -> Result<CdrScenario> {
    if !(0.0..=1.0).contains(&ratio) || ratio <= 0.0 {
        return Err(DataError::InvalidConfig {
            field: "overlap_ratio",
            detail: format!("must lie in (0, 1], got {ratio}"),
        });
    }
    let mut out = scenario.clone();
    if (ratio - 1.0).abs() < f64::EPSILON {
        return Ok(out);
    }
    let mut users = scenario.train_overlap_users.clone();
    let mut rng = component_rng(seed, "overlap-ratio");
    shuffle_in_place(&mut rng, &mut users);
    let keep = ((users.len() as f64) * ratio).round() as usize;
    let keep = keep.max(2).min(users.len());
    users.truncate(keep);
    users.sort_unstable();
    out.train_overlap_users = users;
    Ok(out)
}

/// The sweep of ratios reported in Table VIII.
pub const TABLE8_RATIOS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{build_preset, Scale, ScenarioKind};

    #[test]
    fn ratio_subsamples_training_overlap_only() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 5).unwrap();
        let full = s.n_train_overlap();
        let half = with_overlap_ratio(&s, 0.5, 1).unwrap();
        assert!(half.n_train_overlap() < full);
        assert!((half.n_train_overlap() as f64 - full as f64 * 0.5).abs() <= 1.0);
        // evaluation sets are untouched
        assert_eq!(half.cold_x_to_y.test.len(), s.cold_x_to_y.test.len());
        assert_eq!(half.cold_y_to_x.validation.len(), s.cold_y_to_x.validation.len());
        // training graphs are untouched
        assert_eq!(half.x.train.n_edges(), s.x.train.n_edges());
        assert_eq!(half.y.train.n_edges(), s.y.train.n_edges());
        half.validate().unwrap();
    }

    #[test]
    fn ratio_one_is_identity_and_invalid_ratios_fail() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 6).unwrap();
        let same = with_overlap_ratio(&s, 1.0, 0).unwrap();
        assert_eq!(same.train_overlap_users, s.train_overlap_users);
        assert!(with_overlap_ratio(&s, 0.0, 0).is_err());
        assert!(with_overlap_ratio(&s, 1.5, 0).is_err());
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let s = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 7).unwrap();
        let a = with_overlap_ratio(&s, 0.4, 3).unwrap();
        let b = with_overlap_ratio(&s, 0.4, 3).unwrap();
        let c = with_overlap_ratio(&s, 0.4, 4).unwrap();
        assert_eq!(a.train_overlap_users, b.train_overlap_users);
        assert_ne!(a.train_overlap_users, c.train_overlap_users);
    }

    #[test]
    fn table8_ratios_are_monotone() {
        assert_eq!(TABLE8_RATIOS.len(), 5);
        assert!(TABLE8_RATIOS.windows(2).all(|w| w[0] < w[1]));
    }
}
