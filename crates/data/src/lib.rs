//! # cdrib-data
//!
//! Dataset infrastructure for the CDRIB reproduction: a synthetic
//! cross-domain interaction generator with an explicit shared/specific
//! latent-factor ground truth, the paper's preprocessing pipeline (minimum
//! interaction filters), the cold-start user split of §IV-A, mini-batching
//! with negative sampling, and the overlap-ratio manipulation used by the
//! robustness study (Table VIII).
//!
//! The central type is [`CdrScenario`]: two domains sharing an overlapping
//! user prefix, training graphs with cold-start users' target-domain
//! interactions removed, and per-direction validation/test ground truth.

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod overlap;
pub mod presets;
pub mod raw;
pub mod scenario;
pub mod synthetic;

pub use batch::{EdgeBatch, EdgeBatcher, EpochBatches, NegativeSampler};
pub use error::{DataError, Result};
pub use overlap::{with_overlap_ratio, TABLE8_RATIOS};
pub use presets::{build_preset, preset_config, Scale, ScenarioKind};
pub use raw::{RawCdrData, RawDomain};
pub use scenario::{
    CdrScenario, ColdStartSet, Direction, DomainData, DomainId, DomainStats, EvalCase, ScenarioStats, SplitConfig,
};
pub use synthetic::{generate_raw, generate_scenario, GroundTruth, SyntheticConfig, SyntheticOutput};
