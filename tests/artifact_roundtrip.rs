//! Property tests of the frozen-model artifact pipeline: `save` → `load` →
//! tape-free `InferenceModel` must reproduce the tape forward **bit for
//! bit** across model topologies, and damaged or version-skewed artifacts
//! must fail with typed errors — never decode into a silently different
//! model.

use cdrib::core::artifact::{MODEL_KIND, MODEL_VERSION, QUANT_KIND, QUANT_VERSION};
use cdrib::core::{freeze_quant_bytes, load_quant_bytes, CdribConfig, CdribModel, InferenceModel};
use cdrib::data::{build_preset, Scale, ScenarioKind};
use cdrib::graph::GraphDelta;
use cdrib::tensor::artifact as envelope;
use cdrib::tensor::{ArtifactError, QuantizedTable};
use proptest::prelude::*;

/// A small model-topology strategy: embedding width, stacking depth, mean
/// activation and init seed all vary; the scenario stays tiny so each case
/// builds in milliseconds.
fn topology() -> impl Strategy<Value = (usize, usize, bool, u64)> {
    (4usize..20, 1usize..4, 0usize..2, 0u64..1000).prop_map(|(dim, layers, nl, seed)| (dim, layers, nl == 1, seed))
}

/// Ids across the whole `u32` space, with the maximum itself drawn often
/// enough that the round trip provably survives max-id edges.
fn wide_id() -> impl Strategy<Value = u32> {
    (0u32..u32::MAX).prop_map(|v| if v % 13 == 0 { u32::MAX } else { v })
}

fn build(dim: usize, layers: usize, nonlinear_mean: bool, seed: u64) -> (CdribModel, cdrib::data::CdrScenario) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 13).unwrap();
    let config = CdribConfig {
        dim,
        layers,
        nonlinear_mean,
        seed,
        eval_every: 0,
        patience: 0,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    (model, scenario)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_inference_reproduces_tape_forward_bit_for_bit((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let tape = model.infer_embeddings().unwrap();

        let bytes = model.save_bytes(&scenario);
        let (loaded, loaded_scenario) = CdribModel::load_bytes(&bytes).unwrap();
        prop_assert_eq!(loaded_scenario.x.n_items, scenario.x.n_items);

        let mut inference = InferenceModel::from_model(&loaded);
        let frozen = inference.embeddings().unwrap();
        // Bitwise: the artifact carries exact f32 payloads and the tape-free
        // forward shares the tape's functional kernel layer.
        prop_assert_eq!(&tape.x_users, &frozen.x_users);
        prop_assert_eq!(&tape.x_items, &frozen.x_items);
        prop_assert_eq!(&tape.y_users, &frozen.y_users);
        prop_assert_eq!(&tape.y_items, &frozen.y_items);
    }

    #[test]
    fn corrupted_artifacts_fail_with_typed_errors((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = model.save_bytes(&scenario);
        let payload_len = envelope::decode(&bytes, MODEL_KIND, MODEL_VERSION).unwrap().len();
        let payload_start = bytes.len() - payload_len;

        // Flip one byte at several payload offsets derived from the seed:
        // the checksum must catch every one of them.
        for salt in 0..4u64 {
            let offset = payload_start + ((seed.wrapping_mul(0x9e37) + salt * 7919) as usize % payload_len);
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 1 << (salt % 8);
            prop_assert!(
                matches!(CdribModel::load_bytes(&corrupted), Err(ArtifactError::ChecksumMismatch { .. })),
                "payload flip at {} escaped the checksum", offset
            );
        }
        // Header damage is typed too (never a panic, never a silent load).
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        prop_assert!(matches!(CdribModel::load_bytes(&bad_magic), Err(ArtifactError::BadMagic)));
        prop_assert!(CdribModel::load_bytes(&bytes[..payload_start / 2]).is_err());
    }

    #[test]
    fn quant_artifact_roundtrips_reject_corruption_and_version_skew((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = freeze_quant_bytes(&model, &scenario).unwrap();

        // Round trip: the decoded snapshot carries the exact f32 user tables
        // and exactly the quantisation of the frozen item tables.
        let artifact = load_quant_bytes(&bytes).unwrap();
        let embeddings = model.infer_embeddings().unwrap();
        prop_assert_eq!(&artifact.x_users, &embeddings.x_users);
        prop_assert_eq!(&artifact.y_users, &embeddings.y_users);
        prop_assert_eq!(&artifact.x_items, &QuantizedTable::from_tensor(&embeddings.x_items));
        prop_assert_eq!(&artifact.y_items, &QuantizedTable::from_tensor(&embeddings.y_items));
        prop_assert_eq!(artifact.scenario.x.n_items, scenario.x.n_items);

        // Payload corruption at seed-derived offsets: the envelope checksum
        // must catch every flip.
        let payload_len = envelope::decode(&bytes, QUANT_KIND, QUANT_VERSION).unwrap().len();
        let payload_start = bytes.len() - payload_len;
        for salt in 0..4u64 {
            let offset = payload_start + ((seed.wrapping_mul(0x9e37) + salt * 7919) as usize % payload_len);
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 1 << (salt % 8);
            prop_assert!(
                matches!(load_quant_bytes(&corrupted), Err(ArtifactError::ChecksumMismatch { .. })),
                "payload flip at {} escaped the checksum", offset
            );
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        prop_assert!(matches!(load_quant_bytes(&bad_magic), Err(ArtifactError::BadMagic)));
        prop_assert!(load_quant_bytes(&bytes[..payload_start / 2]).is_err());

        // Version skew and kind confusion are typed, in both directions.
        let payload = envelope::decode(&bytes, QUANT_KIND, QUANT_VERSION).unwrap().to_vec();
        let future = envelope::encode(QUANT_KIND, QUANT_VERSION + 1, &payload);
        prop_assert!(matches!(
            load_quant_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, supported, .. })
                if found == QUANT_VERSION + 1 && supported == QUANT_VERSION
        ));
        prop_assert!(matches!(
            load_quant_bytes(&model.save_bytes(&scenario)),
            Err(ArtifactError::WrongKind { .. })
        ));
        prop_assert!(matches!(
            CdribModel::load_bytes(&bytes),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    #[test]
    fn version_skew_is_rejected((dim, layers, nonlinear_mean, seed) in topology()) {
        let (model, scenario) = build(dim, layers, nonlinear_mean, seed);
        let bytes = model.save_bytes(&scenario);
        let payload = envelope::decode(&bytes, MODEL_KIND, MODEL_VERSION).unwrap().to_vec();

        let future = envelope::encode(MODEL_KIND, MODEL_VERSION + 1, &payload);
        prop_assert!(matches!(
            CdribModel::load_bytes(&future),
            Err(ArtifactError::UnsupportedVersion { found, supported, .. })
                if found == MODEL_VERSION + 1 && supported == MODEL_VERSION
        ));

        let wrong_kind = envelope::encode("cdrib.baseline", MODEL_VERSION, &payload);
        prop_assert!(matches!(
            CdribModel::load_bytes(&wrong_kind),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    /// The `GraphDelta` serde round trip the write-ahead log depends on:
    /// decode(encode(delta)) is the identity, and re-encoding the decoded
    /// value reproduces the exact same bytes — so a logged delta replays
    /// bitwise and a rewritten log is byte-stable.
    #[test]
    fn graph_delta_serde_roundtrip_is_bitwise_stable(
        add_users in 0usize..6,
        add_items in 0usize..6,
        edges in proptest::collection::vec((wide_id(), wide_id()), 0..24),
    ) {
        let delta = GraphDelta { add_users, add_items, edges };
        let bytes = serde::to_bytes(&delta);
        let back: GraphDelta = serde::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &delta);
        prop_assert_eq!(serde::to_bytes(&back), bytes, "re-encode must be byte-identical");
    }
}

/// Deterministic edge cases of the delta round trip: the empty delta (a
/// quiet tick in the log) and edges at the extreme of the id space.
#[test]
fn graph_delta_roundtrip_edge_cases() {
    let cases = [
        GraphDelta::empty(),
        GraphDelta {
            add_users: 0,
            add_items: 0,
            edges: vec![(u32::MAX, u32::MAX), (0, u32::MAX), (u32::MAX, 0)],
        },
        GraphDelta {
            add_users: usize::MAX,
            add_items: usize::MAX,
            edges: vec![],
        },
    ];
    for delta in cases {
        let bytes = serde::to_bytes(&delta);
        let back: GraphDelta = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
        assert_eq!(serde::to_bytes(&back), bytes);
        // Truncated delta bytes never decode into a silently different
        // delta — the same guarantee record replay relies on.
        for cut in 0..bytes.len() {
            assert!(serde::from_bytes::<GraphDelta>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
