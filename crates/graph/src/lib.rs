//! # cdrib-graph
//!
//! Bipartite user-item interaction graphs for the CDRIB reproduction.
//!
//! The crate wraps the sparse CSR machinery of [`cdrib_tensor`] with the
//! domain objects the recommender stack needs: validated edge lists,
//! neighbour lists, the normalised adjacency views consumed by the
//! variational bipartite graph encoder, and small graph analytics (degree
//! histograms, two-hop neighbourhoods) used by the evaluation protocol and
//! baselines.

#![warn(missing_docs)]

pub mod bipartite;
pub mod delta;
pub mod error;

pub use bipartite::BipartiteGraph;
pub use delta::{DeltaEffect, GraphDelta};
pub use error::{GraphError, Result};
