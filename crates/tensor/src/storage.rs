//! The owned-or-mapped storage seam behind every frozen table.
//!
//! [`TableStorage<T>`] is what `Tensor.data`, the quantised table arrays and
//! the serving catalogues hold instead of a bare `Vec<T>`: either an owned
//! vector (training, online updates, v1 decode loads) or a borrowed view
//! into an [`Arc<MappedRegion>`](crate::mmap::MappedRegion) (zero-copy v2
//! loads). It derefs to `&[T]`, so the kernels — which already consume
//! slices — and almost every existing call site are oblivious to which
//! variant they are looking at.
//!
//! The mutability rule is copy-on-write: `Deref` is free on both variants,
//! while `DerefMut`/[`TableStorage::make_owned`] materialise a mapped view
//! into an owned `Vec<T>` first. That is exactly the semantics the online
//! delta path needs — a serve process patches dirty rows of a mapped base
//! table and only those tables migrate off the map.
//!
//! Serialization is byte-identical to `Vec<T>`'s encoding (u64 length
//! prefix, then elements), so structs that swapped `Vec<T>` for
//! `TableStorage<T>` keep their v1 artifact format bit-for-bit.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crate::artifact::ArtifactError;
use crate::mmap::MappedRegion;

/// Table storage that is either an owned `Vec<T>` or a borrowed view into a
/// mapped artifact region. See the module docs for the semantics.
pub struct TableStorage<T: Copy + 'static> {
    repr: Repr<T>,
}

enum Repr<T: Copy + 'static> {
    Owned(Vec<T>),
    Mapped(SectionView<T>),
}

/// A typed view of `len` elements starting `offset` bytes into a region.
/// Construction validates bounds and alignment once; after that `as_slice`
/// is a pointer add.
struct SectionView<T> {
    region: Arc<MappedRegion>,
    offset: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T> SectionView<T> {
    fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: construction checked that `offset` is aligned for `T` on
        // top of the region's 64-byte base alignment and that
        // `offset + len * size_of::<T>()` is in bounds; the region is
        // immutable and kept alive by the Arc.
        unsafe {
            let ptr = self.region.base_ptr().add(self.offset) as *const T;
            std::slice::from_raw_parts(ptr, self.len)
        }
    }
}

impl<T: Copy + 'static> TableStorage<T> {
    /// Owned storage over `vec`.
    pub fn from_vec(vec: Vec<T>) -> Self {
        TableStorage { repr: Repr::Owned(vec) }
    }

    /// A borrowed view of `elems` elements of `T` starting at `byte_offset`
    /// inside `region`.
    ///
    /// Fails (typed, never UB) when the range leaves the region or the
    /// offset is not aligned for `T`. The v2 section reader performs the
    /// richer, name-carrying validation first; this is the load-bearing
    /// final check at the unsafe boundary.
    pub fn mapped(region: Arc<MappedRegion>, byte_offset: usize, elems: usize) -> Result<Self, ArtifactError> {
        let elem = std::mem::size_of::<T>();
        let bytes = elems.checked_mul(elem).ok_or(ArtifactError::Mismatch {
            detail: "mapped table length overflows".to_string(),
        })?;
        let end = byte_offset.checked_add(bytes).ok_or(ArtifactError::Mismatch {
            detail: "mapped table range overflows".to_string(),
        })?;
        if end > region.len() {
            return Err(ArtifactError::Mismatch {
                detail: format!(
                    "mapped table range {byte_offset}..{end} exceeds region of {} bytes",
                    region.len()
                ),
            });
        }
        if !byte_offset.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(ArtifactError::Mismatch {
                detail: format!("mapped table offset {byte_offset} is not aligned for an element size of {elem}"),
            });
        }
        Ok(TableStorage {
            repr: Repr::Mapped(SectionView {
                region,
                offset: byte_offset,
                len: elems,
                _marker: PhantomData,
            }),
        })
    }

    /// The elements as a slice (free on both variants).
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped(view) => view.as_slice(),
        }
    }

    /// Mutable access; materialises a mapped view into owned storage first
    /// (the copy-on-write trigger).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.make_owned()
    }

    /// Ensures the storage owns its elements, copying them out of the map
    /// on first call, and returns the owned vector for `Vec`-only
    /// operations (`resize`, `extend`, …).
    pub fn make_owned(&mut self) -> &mut Vec<T> {
        if let Repr::Mapped(view) = &self.repr {
            self.repr = Repr::Owned(view.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped(_) => unreachable!("just materialised"),
        }
    }

    /// `true` while the elements still live in a mapped region.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped(_))
    }

    /// Resizes to `n` elements filled with `value` (copy-on-write).
    pub fn resize(&mut self, n: usize, value: T) {
        // Resizing to the current length is a no-op for tables that only
        // confirm their size — don't materialise a mapped view for that.
        if n == self.len() {
            return;
        }
        self.make_owned().resize(n, value);
    }

    /// Appends `items` (copy-on-write).
    pub fn extend_from_slice(&mut self, items: &[T]) {
        if items.is_empty() {
            return;
        }
        self.make_owned().extend_from_slice(items);
    }

    /// Consumes the storage into an owned `Vec<T>` (copies if mapped).
    pub fn into_vec(self) -> Vec<T> {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Mapped(view) => view.as_slice().to_vec(),
        }
    }
}

impl<T: Copy + 'static> From<Vec<T>> for TableStorage<T> {
    fn from(vec: Vec<T>) -> Self {
        TableStorage::from_vec(vec)
    }
}

impl<T: Copy + 'static> FromIterator<T> for TableStorage<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        TableStorage::from_vec(iter.into_iter().collect())
    }
}

impl<T: Copy + 'static> Default for TableStorage<T> {
    fn default() -> Self {
        TableStorage::from_vec(Vec::new())
    }
}

impl<T: Copy + 'static> Deref for TableStorage<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + 'static> DerefMut for TableStorage<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

/// Cloning a mapped table clones the `Arc`, not the elements — that is what
/// makes the online path's shadow-table `clone()` cheap on a mapped base.
impl<T: Copy + 'static> Clone for TableStorage<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => TableStorage::from_vec(v.clone()),
            Repr::Mapped(view) => TableStorage {
                repr: Repr::Mapped(SectionView {
                    region: Arc::clone(&view.region),
                    offset: view.offset,
                    len: view.len,
                    _marker: PhantomData,
                }),
            },
        }
    }
}

/// Equality is by element contents: a mapped table equals its owned copy.
impl<T: Copy + PartialEq + 'static> PartialEq for TableStorage<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + std::fmt::Debug + 'static> std::fmt::Debug for TableStorage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Byte-identical to `Vec<T>`'s encoding so v1 artifacts are unchanged.
impl<T: Copy + serde::Serialize + 'static> serde::Serialize for TableStorage<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for item in self.as_slice() {
            item.serialize(out);
        }
    }
}

impl<'de, T: Copy + serde::Deserialize<'de> + 'static> serde::Deserialize<'de> for TableStorage<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, serde::Error> {
        Ok(TableStorage::from_vec(Vec::<T>::deserialize(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmap;

    fn region_of_f32(values: &[f32]) -> Arc<MappedRegion> {
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mmap::from_bytes(&bytes)
    }

    #[test]
    fn mapped_view_reads_and_cow_writes() {
        let values = [1.0f32, -2.5, 3.25, 0.0];
        let region = region_of_f32(&values);
        let mut table = TableStorage::<f32>::mapped(region, 0, values.len()).unwrap();
        assert!(table.is_mapped());
        assert_eq!(&table[..], &values[..]);

        // First mutation materialises; the map is untouched.
        table[1] = 9.0;
        assert!(!table.is_mapped());
        assert_eq!(table[1], 9.0);
        assert_eq!(table[0], 1.0);
    }

    #[test]
    fn mapped_rejects_out_of_bounds_and_misalignment() {
        let region = region_of_f32(&[1.0, 2.0]);
        assert!(TableStorage::<f32>::mapped(Arc::clone(&region), 0, 3).is_err());
        assert!(TableStorage::<f32>::mapped(Arc::clone(&region), 2, 1).is_err());
        assert!(TableStorage::<f32>::mapped(region, 4, 1).is_ok());
    }

    #[test]
    fn clone_of_mapped_is_cheap_and_equal() {
        let region = region_of_f32(&[1.0, 2.0, 3.0]);
        let table = TableStorage::<f32>::mapped(region, 0, 3).unwrap();
        let cloned = table.clone();
        assert!(cloned.is_mapped());
        assert_eq!(table, cloned);
        // Owned copy of the same contents is also equal.
        let owned = TableStorage::from_vec(vec![1.0f32, 2.0, 3.0]);
        assert_eq!(table, owned);
    }

    #[test]
    fn serde_matches_vec_encoding() {
        let vec = vec![1u32, 2, 3, 400];
        let table = TableStorage::from_vec(vec.clone());
        assert_eq!(serde::to_bytes(&table), serde::to_bytes(&vec));
        let back: TableStorage<u32> = serde::from_bytes(&serde::to_bytes(&vec)).unwrap();
        assert_eq!(&back[..], &vec[..]);

        // A mapped table serializes its viewed elements identically.
        let region = region_of_f32(&[5.0, 6.0]);
        let mapped = TableStorage::<f32>::mapped(region, 0, 2).unwrap();
        assert_eq!(serde::to_bytes(&mapped), serde::to_bytes(&vec![5.0f32, 6.0]));
    }

    #[test]
    fn resize_same_len_keeps_map() {
        let region = region_of_f32(&[1.0, 2.0]);
        let mut table = TableStorage::<f32>::mapped(region, 0, 2).unwrap();
        table.resize(2, 0.0);
        assert!(table.is_mapped());
        table.resize(4, 0.0);
        assert!(!table.is_mapped());
        assert_eq!(&table[..], &[1.0, 2.0, 0.0, 0.0]);
    }
}
