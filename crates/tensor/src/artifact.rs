//! The versioned on-disk envelope shared by every model artifact.
//!
//! Training and serving are separate processes in the target architecture:
//! a trainer freezes its model into an *artifact*, a serving process loads
//! it (possibly much later, possibly built from a newer source tree) and
//! answers top-K queries. The envelope makes that hand-off safe:
//!
//! ```text
//! [ magic "CDRB" | kind len + kind bytes | format version u32
//!   | payload len u64 | payload checksum u64 | header checksum u64
//!   | payload bytes ]
//! ```
//!
//! * **magic** rejects files that are not artifacts at all;
//! * **kind** (e.g. `cdrib.model`, `cdrib.baseline`) rejects artifacts of
//!   the wrong type before any payload decoding;
//! * **version** is per-kind and bumped on any payload layout change, so a
//!   reader never misinterprets old bytes (the serde stand-in's binary
//!   format has no self-description to fall back on);
//! * **payload checksum** (FNV-1a over the payload) rejects bit rot and
//!   truncation with a typed error instead of a garbled model;
//! * **header checksum** (FNV-1a over the kind/version/length/payload-checksum
//!   bytes) rejects bit rot in the header fields themselves — without it a
//!   flipped bit in `payload len` or the recorded checksum would be reported
//!   as payload corruption (or worse, truncation) instead of what it is.
//!
//! Envelopes also frame the serving write-ahead log (`cdrib_serve::wal`):
//! a log file opens with an envelope whose small payload carries the log
//! metadata, followed by raw append records. [`decode_prefix`] supports that
//! layout by returning how many bytes the envelope consumed instead of
//! insisting the payload runs to the end of the input.
//!
//! Payloads themselves are produced with [`serde::to_bytes`] by the owning
//! crate (`cdrib-core` for CDRIB models, `cdrib-baselines` for baseline
//! scorers).

use std::fmt;
use std::path::Path;

pub mod v2;

/// Leading magic bytes of every artifact file.
pub const MAGIC: [u8; 4] = *b"CDRB";

/// Errors raised while encoding or decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The input does not start with the artifact magic.
    BadMagic,
    /// The artifact holds a different kind of payload.
    WrongKind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind recorded in the artifact.
        found: String,
    },
    /// The artifact was written with an unsupported format version.
    UnsupportedVersion {
        /// Artifact kind.
        kind: String,
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload checksum does not match (bit rot, truncation, partial
    /// write).
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: u64,
        /// Checksum of the actual payload bytes.
        actual: u64,
    },
    /// The envelope itself is shorter than its headers claim (including
    /// zero-length and sub-header-size inputs that still begin like an
    /// artifact).
    Truncated,
    /// The header fields themselves failed their checksum: the envelope was
    /// damaged before the payload even starts, so none of the recorded
    /// kind/version/length values can be trusted.
    HeaderCorrupted {
        /// Header checksum recorded in the envelope.
        expected: u64,
        /// Checksum of the actual header bytes.
        actual: u64,
    },
    /// The payload failed to decode.
    Decode(serde::Error),
    /// The decoded payload is internally inconsistent with the loading
    /// context (e.g. parameter names or shapes that do not match the model
    /// the artifact claims to be).
    Mismatch {
        /// What disagreed.
        detail: String,
    },
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
    /// A v2 section's offset violates the container's 64-byte grid or the
    /// section's own recorded element alignment — serving it in place from
    /// a map would fault or silently misread, so the whole load is refused.
    SectionMisaligned {
        /// Section name.
        name: String,
        /// Offset recorded in the section table.
        offset: u64,
        /// Alignment recorded in the section table.
        align: u32,
    },
    /// A v2 section's recorded range leaves the container (or overlaps the
    /// header/section table).
    SectionOutOfBounds {
        /// Section name.
        name: String,
        /// Offset recorded in the section table.
        offset: u64,
        /// Length recorded in the section table.
        len: u64,
        /// Total container length recorded in the header.
        total: u64,
    },
    /// Two v2 sections' recorded ranges intersect; a write through one view
    /// of such a file could corrupt the other, so the layout is rejected.
    SectionOverlap {
        /// First section (lower offset).
        a: String,
        /// Second section.
        b: String,
    },
    /// A v2 section's bytes fail their recorded FNV-1a checksum.
    SectionChecksum {
        /// Section name.
        name: String,
        /// Checksum recorded in the section table.
        expected: u64,
        /// Checksum of the actual section bytes.
        actual: u64,
    },
    /// A v2 container is missing a section the reader requires.
    MissingSection {
        /// Section name the reader asked for.
        name: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a CDRB artifact (bad magic)"),
            ArtifactError::WrongKind { expected, found } => {
                write!(f, "artifact kind mismatch: expected `{expected}`, found `{found}`")
            }
            ArtifactError::UnsupportedVersion { kind, found, supported } => write!(
                f,
                "unsupported `{kind}` artifact version {found} (this build supports {supported})"
            ),
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact payload corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            ArtifactError::Truncated => write!(f, "artifact truncated before the payload ended"),
            ArtifactError::HeaderCorrupted { expected, actual } => write!(
                f,
                "artifact header corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            ArtifactError::Decode(e) => write!(f, "artifact payload failed to decode: {e}"),
            ArtifactError::Mismatch { detail } => write!(f, "artifact payload inconsistent: {detail}"),
            ArtifactError::Io(e) => write!(f, "artifact i/o failed: {e}"),
            ArtifactError::SectionMisaligned { name, offset, align } => write!(
                f,
                "artifact section `{name}` misaligned: offset {offset} with recorded alignment {align}"
            ),
            ArtifactError::SectionOutOfBounds {
                name,
                offset,
                len,
                total,
            } => write!(
                f,
                "artifact section `{name}` out of bounds: {offset}+{len} exceeds container of {total} bytes"
            ),
            ArtifactError::SectionOverlap { a, b } => {
                write!(f, "artifact sections `{a}` and `{b}` overlap")
            }
            ArtifactError::SectionChecksum { name, expected, actual } => write!(
                f,
                "artifact section `{name}` corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            ArtifactError::MissingSection { name } => {
                write!(f, "artifact is missing required section `{name}`")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Decode(e) => Some(e),
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde::Error> for ArtifactError {
    fn from(e: serde::Error) -> Self {
        ArtifactError::Decode(e)
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a over a byte slice: not cryptographic, but a reliable detector of
/// flipped bits and truncation, dependency-free and fast enough to be noise
/// next to the payload encode itself. Public because the serving write-ahead
/// log checksums its append records with the same function the envelope uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps an encoded payload in the versioned envelope.
pub fn encode(kind: &str, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + kind.len() + 40);
    out.extend_from_slice(&MAGIC);
    serde::Serialize::serialize(kind, &mut out);
    serde::Serialize::serialize(&version, &mut out);
    serde::Serialize::serialize(&(payload.len() as u64), &mut out);
    serde::Serialize::serialize(&fnv1a(payload), &mut out);
    let header_checksum = fnv1a(&out[MAGIC.len()..]);
    serde::Serialize::serialize(&header_checksum, &mut out);
    out.extend_from_slice(payload);
    out
}

/// Short header reads mean the file ended mid-header: that is truncation,
/// not a payload decode failure. Anything else (e.g. a kind string that is
/// not UTF-8) still surfaces as a decode error — the header checksum right
/// after parsing decides whether it was bit rot.
fn header_field<'de, T: serde::Deserialize<'de>>(input: &mut &'de [u8]) -> Result<T, ArtifactError> {
    serde::Deserialize::deserialize(input).map_err(|e| match e {
        // A length claiming more bytes than remain is the same symptom as a
        // plain short read: the file ended before the envelope did.
        serde::Error::UnexpectedEof { .. } | serde::Error::InvalidLength { .. } => ArtifactError::Truncated,
        other => ArtifactError::Decode(other),
    })
}

/// Validates the envelope and returns the payload slice plus the total
/// number of bytes the envelope occupied (header + payload). Bytes after the
/// payload are ignored, which is what frames the write-ahead log: an
/// envelope up front, append records after it.
///
/// `kind` and `version` are what the caller supports; any disagreement is a
/// typed [`ArtifactError`], never a silent misread.
pub fn decode_prefix<'a>(bytes: &'a [u8], kind: &str, version: u32) -> Result<(&'a [u8], usize), ArtifactError> {
    let head = &bytes[..bytes.len().min(MAGIC.len())];
    if head != &MAGIC[..head.len()] {
        return Err(ArtifactError::BadMagic);
    }
    if bytes.len() < MAGIC.len() {
        // Empty and sub-magic-size files that are a prefix of a real
        // artifact: typed truncation, not "bad magic".
        return Err(ArtifactError::Truncated);
    }
    let mut input = &bytes[MAGIC.len()..];
    let found_kind: String = header_field(&mut input)?;
    let found_version: u32 = header_field(&mut input)?;
    let payload_len: u64 = header_field(&mut input)?;
    let expected: u64 = header_field(&mut input)?;
    // Verify the header's own integrity before trusting any comparison
    // against the parsed fields: a flipped bit in `kind` must not be
    // reported as "wrong kind".
    let header_end = bytes.len() - input.len();
    let header_actual = fnv1a(&bytes[MAGIC.len()..header_end]);
    let header_expected: u64 = header_field(&mut input)?;
    if header_actual != header_expected {
        return Err(ArtifactError::HeaderCorrupted {
            expected: header_expected,
            actual: header_actual,
        });
    }
    if found_kind != kind {
        return Err(ArtifactError::WrongKind {
            expected: kind.to_string(),
            found: found_kind,
        });
    }
    if found_version != version {
        return Err(ArtifactError::UnsupportedVersion {
            kind: found_kind,
            found: found_version,
            supported: version,
        });
    }
    if (input.len() as u64) < payload_len {
        return Err(ArtifactError::Truncated);
    }
    let payload = &input[..payload_len as usize];
    let actual = fnv1a(payload);
    if actual != expected {
        return Err(ArtifactError::ChecksumMismatch { expected, actual });
    }
    let consumed = (bytes.len() - input.len()) + payload_len as usize;
    Ok((payload, consumed))
}

/// Validates the envelope and returns the payload slice.
///
/// `kind` and `version` are what the caller supports; any disagreement is a
/// typed [`ArtifactError`], never a silent misread.
pub fn decode<'a>(bytes: &'a [u8], kind: &str, version: u32) -> Result<&'a [u8], ArtifactError> {
    Ok(decode_prefix(bytes, kind, version)?.0)
}

/// Writes an enveloped artifact to a file.
pub fn write_file(path: impl AsRef<Path>, kind: &str, version: u32, payload: &[u8]) -> Result<(), ArtifactError> {
    Ok(std::fs::write(path, encode(kind, version, payload))?)
}

/// Reads an artifact file and returns its validated payload.
pub fn read_file(path: impl AsRef<Path>, kind: &str, version: u32) -> Result<Vec<u8>, ArtifactError> {
    let bytes = std::fs::read(path)?;
    Ok(decode(&bytes, kind, version)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_kind_checks() {
        let payload = serde::to_bytes(&vec![1.5f32, -2.0, 3.25]);
        let bytes = encode("test.kind", 3, &payload);
        let back = decode(&bytes, "test.kind", 3).unwrap();
        assert_eq!(back, &payload[..]);
        let values: Vec<f32> = serde::from_bytes(back).unwrap();
        assert_eq!(values, vec![1.5, -2.0, 3.25]);

        assert!(matches!(
            decode(&bytes, "other.kind", 3),
            Err(ArtifactError::WrongKind { .. })
        ));
        assert!(matches!(
            decode(&bytes, "test.kind", 4),
            Err(ArtifactError::UnsupportedVersion {
                found: 3,
                supported: 4,
                ..
            })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let payload = serde::to_bytes(&String::from("model weights"));
        let bytes = encode("test.kind", 1, &payload);
        // Bad magic.
        assert!(matches!(decode(b"nope", "test.kind", 1), Err(ArtifactError::BadMagic)));
        // Every single-bit flip in the payload region must be caught.
        let payload_start = bytes.len() - payload.len();
        for offset in [payload_start, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x40;
            assert!(
                matches!(
                    decode(&corrupted, "test.kind", 1),
                    Err(ArtifactError::ChecksumMismatch { .. })
                ),
                "flip at {offset} must be detected"
            );
        }
        // Truncation.
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3], "test.kind", 1),
            Err(ArtifactError::Truncated)
        ));
    }

    #[test]
    fn degenerate_inputs_are_typed_truncation() {
        // Zero-length and sub-header-size inputs must yield typed errors,
        // never a panic or a misleading payload-decode error.
        assert!(matches!(decode(b"", "test.kind", 1), Err(ArtifactError::Truncated)));
        assert!(matches!(decode(b"CD", "test.kind", 1), Err(ArtifactError::Truncated)));
        let bytes = encode("test.kind", 1, b"payload");
        // Every cut inside the header region reads as truncation (the file
        // ended before the envelope did), not as BadMagic/Decode garbage.
        let payload_start = bytes.len() - b"payload".len();
        for cut in MAGIC.len()..payload_start {
            assert!(
                matches!(decode(&bytes[..cut], "test.kind", 1), Err(ArtifactError::Truncated)),
                "cut at {cut} must be typed truncation"
            );
        }
    }

    #[test]
    fn header_bit_rot_is_detected() {
        let bytes = encode("test.kind", 1, b"payload");
        let payload_start = bytes.len() - b"payload".len();
        // A flipped bit anywhere in the checksummed header region (kind,
        // version, lengths, payload checksum) is reported as header
        // corruption — not misread as "wrong kind" or "payload corrupted".
        for offset in MAGIC.len()..payload_start {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x10;
            // A flip in a length byte can shift the parse, so the typed
            // error may be truncation or a decode failure instead of the
            // checksum verdict — but never a silent misread or a misleading
            // WrongKind / payload ChecksumMismatch.
            match decode(&corrupted, "test.kind", 1) {
                Err(ArtifactError::HeaderCorrupted { .. })
                | Err(ArtifactError::Truncated)
                | Err(ArtifactError::Decode(_)) => {}
                other => panic!("flip at {offset}: expected header corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn prefix_decode_reports_consumed_length() {
        let payload = b"wal header payload";
        let mut bytes = encode("test.wal", 2, payload);
        let envelope_len = bytes.len();
        bytes.extend_from_slice(b"records follow the envelope");
        let (back, consumed) = decode_prefix(&bytes, "test.wal", 2).unwrap();
        assert_eq!(back, payload);
        assert_eq!(consumed, envelope_len);
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("cdrib-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("envelope.cdrb");
        write_file(&path, "test.file", 2, b"abc").unwrap();
        assert_eq!(read_file(&path, "test.file", 2).unwrap(), b"abc");
        assert!(matches!(
            read_file(dir.join("missing.cdrb"), "test.file", 2),
            Err(ArtifactError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
