//! Error type for graph construction and queries.

use std::fmt;

/// Errors produced while building or querying interaction graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a user index outside `0..n_users`.
    UserOutOfRange {
        /// Offending user index.
        user: usize,
        /// Number of users in the graph.
        n_users: usize,
    },
    /// An edge references an item index outside `0..n_items`.
    ItemOutOfRange {
        /// Offending item index.
        item: usize,
        /// Number of items in the graph.
        n_items: usize,
    },
    /// The graph has no edges where at least one is required.
    EmptyGraph,
    /// A structural invariant was violated (sorted/deduplicated neighbour
    /// lists, consistent adjacency sides, sorted unique edge list). Only
    /// reachable through [`crate::BipartiteGraph::check_invariants`]; a
    /// violation means a bug in an in-place mutation path.
    InvariantViolation {
        /// Human readable detail.
        detail: String,
    },
    /// A lower-level tensor error.
    Tensor(cdrib_tensor::TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UserOutOfRange { user, n_users } => {
                write!(f, "user index {user} out of range (graph has {n_users} users)")
            }
            GraphError::ItemOutOfRange { item, n_items } => {
                write!(f, "item index {item} out of range (graph has {n_items} items)")
            }
            GraphError::EmptyGraph => write!(f, "the interaction graph has no edges"),
            GraphError::InvariantViolation { detail } => {
                write!(f, "graph invariant violated: {detail}")
            }
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdrib_tensor::TensorError> for GraphError {
    fn from(e: cdrib_tensor::TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UserOutOfRange { user: 7, n_users: 3 }
            .to_string()
            .contains("7"));
        assert!(GraphError::ItemOutOfRange { item: 9, n_items: 2 }
            .to_string()
            .contains("9"));
        assert!(GraphError::EmptyGraph.to_string().contains("no edges"));
        let te = cdrib_tensor::TensorError::NoGradient;
        let ge: GraphError = te.into();
        assert!(ge.to_string().contains("tensor error"));
        use std::error::Error;
        assert!(ge.source().is_some());
        assert!(GraphError::EmptyGraph.source().is_none());
    }
}
