//! Parity suite for the batched evaluation scoring path.
//!
//! The evaluation protocol scores candidates through
//! [`EmbeddingScorer::score_into`] — fused SIMD kernels
//! (`score_candidates_dot` / `score_candidates_neg_sq_dist`) plus, behind
//! the `parallel` feature, `std::thread::scope` chunking over cases. These
//! properties pin the batched path to the scalar [`EmbeddingScorer::pair_score`]
//! reference within `1e-5` for both [`ScoreKind`]s, including empty item
//! lists and single-row tables. The same file runs under
//! `--no-default-features`, so the serial fallback is held to the identical
//! contract.

use cdrib::data::{Direction, DomainId};
use cdrib::eval::{ColdStartScorer, EmbeddingScorer, ScoreKind};
use cdrib::tensor::Tensor;
use proptest::prelude::*;

/// A random embedding table: `rows x cols` with bounded entries.
fn table(rows: core::ops::Range<usize>, cols: usize) -> impl Strategy<Value = Tensor> {
    rows.prop_flat_map(move |r| {
        proptest::collection::vec(-8.0f32..8.0, r * cols)
            .prop_map(move |v| Tensor::from_vec(r, cols, v).expect("consistent shape"))
    })
}

/// A full scorer plus a candidate list over the Y item table.
fn scorer_and_items(
    kind: ScoreKind,
    item_rows: core::ops::Range<usize>,
) -> impl Strategy<Value = (EmbeddingScorer, Vec<u32>)> {
    (1usize..40, item_rows, 1usize..33).prop_flat_map(move |(users, items, cols)| {
        (
            table(users..users + 1, cols),
            table(2..4, cols),
            table(1..3, cols),
            table(items..items + 1, cols),
            proptest::collection::vec(0u32..items as u32, 0..70),
        )
            .prop_map(move |(xu, xi, yu, yi, cand)| {
                (
                    EmbeddingScorer {
                        x_users: xu,
                        x_items: xi,
                        y_users: yu,
                        y_items: yi,
                        kind,
                    },
                    cand,
                )
            })
    })
}

fn assert_parity(scorer: &EmbeddingScorer, user: u32, items: &[u32]) {
    // Batched bulk path (kernel-backed, the protocol's route).
    let mut batched = vec![f32::NAN; items.len()];
    scorer.score_into(Direction::X_TO_Y, user, items, &mut batched);
    // Allocating wrapper must agree exactly with the bulk path.
    let wrapped = scorer.score_items(Direction::X_TO_Y, user, items);
    assert_eq!(batched, wrapped);
    // Scalar per-pair reference.
    let u_row = scorer.x_users.row(user as usize);
    for (k, &item) in items.iter().enumerate() {
        let reference = scorer.pair_score(u_row, scorer.y_items.row(item as usize));
        let scale = 1.0f32.max(reference.abs()).max(batched[k].abs());
        assert!(
            (batched[k] - reference).abs() <= 1e-5 * scale,
            "candidate {k}: batched {} vs scalar {reference}",
            batched[k]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_dot_matches_scalar_reference((scorer, items) in scorer_and_items(ScoreKind::Dot, 1usize..50)) {
        let user = (items.iter().copied().max().unwrap_or(0) as usize % scorer.x_users.rows()) as u32;
        assert_parity(&scorer, user, &items);
    }

    #[test]
    fn batched_neg_distance_matches_scalar_reference(
        (scorer, items) in scorer_and_items(ScoreKind::NegativeDistance, 1usize..50)
    ) {
        let user = (items.len() % scorer.x_users.rows()) as u32;
        assert_parity(&scorer, user, &items);
    }

    #[test]
    fn single_row_tables_and_empty_lists((scorer, _) in scorer_and_items(ScoreKind::Dot, 1usize..2)) {
        // Item table has exactly one row; candidate lists of length 0 and a
        // long repeated list both must work.
        assert_parity(&scorer, 0, &[]);
        let repeated = vec![0u32; 37];
        assert_parity(&scorer, 0, &repeated);
    }

    #[test]
    fn score_cross_supports_both_domains((scorer, items) in scorer_and_items(ScoreKind::NegativeDistance, 2usize..20)) {
        // The in-domain bulk route (used by baselines) matches pair_score too.
        let row = scorer.y_users.row(0);
        let scores = scorer.score_cross(DomainId::Y, 0, DomainId::Y, &items[..items.len().min(scorer.y_items.rows())]);
        for (k, &item) in items.iter().take(scores.len()).enumerate() {
            let reference = scorer.pair_score(row, scorer.y_items.row(item as usize));
            prop_assert!((scores[k] - reference).abs() <= 1e-5 * 1.0f32.max(reference.abs()));
        }
    }
}
