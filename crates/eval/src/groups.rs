//! Grouped analyses of cold-start performance.
//!
//! Table IX of the paper slices the cold-start users of each direction by
//! how many interactions they have in their *source* domain (5-10, 11-20,
//! ..., 41-50) and reports the metrics per group. This module buckets the
//! per-case results produced by the evaluation protocol accordingly.

use crate::metrics::{MetricsAccumulator, RankingMetrics};
use crate::protocol::EvalOutcome;
use cdrib_data::{CdrScenario, Direction};
use serde::{Deserialize, Serialize};

/// The interaction-count buckets of Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InteractionBucket {
    /// 5-10 source interactions.
    B5to10,
    /// 11-20 source interactions.
    B11to20,
    /// 21-30 source interactions.
    B21to30,
    /// 31-40 source interactions.
    B31to40,
    /// 41-50 source interactions.
    B41to50,
    /// More than 50 source interactions (not reported in the paper's table
    /// but kept so no case silently disappears).
    BOver50,
}

impl InteractionBucket {
    /// All buckets in display order.
    pub const ALL: [InteractionBucket; 6] = [
        InteractionBucket::B5to10,
        InteractionBucket::B11to20,
        InteractionBucket::B21to30,
        InteractionBucket::B31to40,
        InteractionBucket::B41to50,
        InteractionBucket::BOver50,
    ];

    /// The bucket of a given source-interaction count.
    pub fn of(count: usize) -> InteractionBucket {
        match count {
            0..=10 => InteractionBucket::B5to10,
            11..=20 => InteractionBucket::B11to20,
            21..=30 => InteractionBucket::B21to30,
            31..=40 => InteractionBucket::B31to40,
            41..=50 => InteractionBucket::B41to50,
            _ => InteractionBucket::BOver50,
        }
    }

    /// Display label matching the paper ("5-10", "11-20", ...).
    pub fn label(&self) -> &'static str {
        match self {
            InteractionBucket::B5to10 => "5-10",
            InteractionBucket::B11to20 => "11-20",
            InteractionBucket::B21to30 => "21-30",
            InteractionBucket::B31to40 => "31-40",
            InteractionBucket::B41to50 => "41-50",
            InteractionBucket::BOver50 => ">50",
        }
    }
}

/// Metrics of one interaction bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupResult {
    /// The bucket.
    pub bucket: InteractionBucket,
    /// Number of evaluation cases in the bucket.
    pub n_cases: usize,
    /// Averaged metrics, `None` when the bucket is empty.
    pub metrics: Option<RankingMetrics>,
}

/// Buckets an evaluation outcome by the users' source-domain interaction
/// counts (taken from the scenario's training graphs).
pub fn group_by_source_interactions(
    scenario: &CdrScenario,
    direction: Direction,
    outcome: &EvalOutcome,
) -> Vec<GroupResult> {
    let source = scenario.domain(direction.source);
    let mut accs: Vec<MetricsAccumulator> = (0..InteractionBucket::ALL.len())
        .map(|_| MetricsAccumulator::new())
        .collect();
    for case in &outcome.cases {
        let degree = source.train.user_degree(case.user as usize);
        let bucket = InteractionBucket::of(degree);
        let idx = InteractionBucket::ALL.iter().position(|b| *b == bucket).unwrap();
        accs[idx].push_rank(case.rank);
    }
    InteractionBucket::ALL
        .iter()
        .zip(accs.iter())
        .map(|(&bucket, acc)| GroupResult {
            bucket,
            n_cases: acc.count(),
            metrics: acc.mean(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CaseResult;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(InteractionBucket::of(5), InteractionBucket::B5to10);
        assert_eq!(InteractionBucket::of(10), InteractionBucket::B5to10);
        assert_eq!(InteractionBucket::of(11), InteractionBucket::B11to20);
        assert_eq!(InteractionBucket::of(30), InteractionBucket::B21to30);
        assert_eq!(InteractionBucket::of(45), InteractionBucket::B41to50);
        assert_eq!(InteractionBucket::of(200), InteractionBucket::BOver50);
        assert_eq!(InteractionBucket::B11to20.label(), "11-20");
        assert_eq!(InteractionBucket::ALL.len(), 6);
    }

    #[test]
    fn grouping_partitions_all_cases() {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 13).unwrap();
        // Build a fake outcome: every test case with a fixed rank.
        let cases: Vec<CaseResult> = scenario
            .cold_x_to_y
            .test
            .iter()
            .map(|c| CaseResult {
                user: c.user,
                item: c.item,
                rank: 4,
            })
            .collect();
        let outcome = EvalOutcome {
            direction: Direction::X_TO_Y,
            metrics: RankingMetrics::from_rank(4),
            cases,
        };
        let groups = group_by_source_interactions(&scenario, Direction::X_TO_Y, &outcome);
        let total: usize = groups.iter().map(|g| g.n_cases).sum();
        assert_eq!(total, outcome.cases.len());
        // every non-empty group carries the metrics of rank 4
        for g in groups.iter().filter(|g| g.n_cases > 0) {
            let m = g.metrics.unwrap();
            assert!((m.mrr - 0.25).abs() < 1e-12);
            assert_eq!(m.hr1, 0.0);
            assert_eq!(m.hr5, 1.0);
        }
        // empty groups expose None
        for g in groups.iter().filter(|g| g.n_cases == 0) {
            assert!(g.metrics.is_none());
        }
    }
}
