//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor / autodiff / optimizer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The provided buffer length does not match `rows * cols`.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        got: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A dimension was zero where a non-empty tensor is required.
    EmptyTensor {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An invalid configuration value (negative rate, zero dimension, ...).
    InvalidArgument {
        /// Name of the operation or parameter that failed validation.
        what: &'static str,
        /// Human readable detail.
        detail: String,
    },
    /// A variable handle refers to a different tape generation.
    StaleVariable {
        /// Tape generation recorded in the variable.
        var_generation: u64,
        /// Current tape generation.
        tape_generation: u64,
    },
    /// A gradient was requested for a node that does not require gradients.
    NoGradient,
    /// A numerical problem (NaN / infinity) was detected.
    NonFinite {
        /// Name of the operation that produced the value.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "buffer length mismatch: expected {expected}, got {got}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            TensorError::EmptyTensor { op } => write!(f, "operation `{op}` requires a non-empty tensor"),
            TensorError::InvalidArgument { what, detail } => {
                write!(f, "invalid argument for `{what}`: {detail}")
            }
            TensorError::StaleVariable {
                var_generation,
                tape_generation,
            } => write!(
                f,
                "variable belongs to tape generation {var_generation} but the tape is at generation {tape_generation}"
            ),
            TensorError::NoGradient => write!(f, "gradient requested for a non-differentiable node"),
            TensorError::NonFinite { op } => write!(f, "non-finite value produced by `{op}`"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_other_variants() {
        assert!(TensorError::LengthMismatch { expected: 4, got: 2 }
            .to_string()
            .contains("expected 4"));
        assert!(TensorError::IndexOutOfBounds { index: 9, bound: 3 }
            .to_string()
            .contains("9"));
        assert!(TensorError::EmptyTensor { op: "mean" }.to_string().contains("mean"));
        assert!(TensorError::NoGradient.to_string().contains("gradient"));
        assert!(TensorError::NonFinite { op: "log" }.to_string().contains("log"));
        assert!(TensorError::StaleVariable {
            var_generation: 1,
            tape_generation: 2
        }
        .to_string()
        .contains("generation"));
        assert!(TensorError::InvalidArgument {
            what: "dropout",
            detail: "rate must be in [0,1)".into()
        }
        .to_string()
        .contains("dropout"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TensorError>();
    }
}
