//! Zero-copy parity harness for the serve v2 artifact.
//!
//! The v2 container promises that *how* a frozen model is loaded never
//! changes *what* it serves: an engine whose tables borrow a memory map, an
//! engine over the same image copied to an aligned heap region, and the
//! classic v1 decode path must agree **bitwise** on all four embedding
//! tables and produce exactly equal top-K lists — at load time, after WAL
//! recovery over a v2 base, and throughout online delta replay where dirty
//! tables migrate off the map behind the copy-on-write epoch swap. The
//! comparisons reuse the differential pattern of `tests/wal_recovery.rs`:
//! bitwise table equality plus a top-K probe grid over both directions.
//!
//! The harness also pins the v1 compatibility story: a v1 model base plus a
//! v1 checkpoint (what `compact()` wrote before the v2 refactor) plus a WAL
//! still recover bitwise, even though compaction now writes v2 checkpoints.

use cdrib_core::{save_serve_v2_bytes, save_serve_v2_file, CdribConfig, CdribModel};
use cdrib_data::{build_preset, CdrScenario, Direction, DomainId, Scale, ScenarioKind};
use cdrib_graph::GraphDelta;
use cdrib_serve::{wal, Recommendation, Recommender, Request, ScoringPrecision};
use cdrib_tensor::Tensor;
use std::fs;
use std::path::{Path, PathBuf};

/// Scripted deltas per replay sequence (mirrors `tests/wal_recovery.rs`).
const STEPS: usize = 6;

/// A fresh scratch directory under `target/mmap-parity/`.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new("target").join("mmap-parity").join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_model() -> (CdribModel, CdrScenario) {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 4242).unwrap();
    let config = CdribConfig {
        layers: 2,
        ..CdribConfig::fast_test()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    (model, scenario)
}

/// The state two engines must share: the four embedding tables (compared
/// bitwise) and top-K lists for a probe grid covering both directions,
/// first/middle/last users.
struct Snapshot {
    tables: [Tensor; 4],
    topk: Vec<(Request, Vec<Recommendation>)>,
}

fn snapshot(rec: &mut Recommender) -> Snapshot {
    let tables = [
        rec.scorer().x_users.clone(),
        rec.scorer().x_items.clone(),
        rec.scorer().y_users.clone(),
        rec.scorer().y_items.clone(),
    ];
    let mut topk = Vec::new();
    let mut out = Vec::new();
    for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
        let n_source = rec.seen_graph(direction.source).n_users();
        for user in [0, n_source / 2, n_source - 1] {
            let request = Request {
                direction,
                user: user as u32,
                k: 10,
            };
            rec.recommend(&request, &mut out).unwrap();
            topk.push((request, out.clone()));
        }
    }
    Snapshot { tables, topk }
}

fn assert_matches(rec: &mut Recommender, snap: &Snapshot, context: &str) {
    assert_eq!(rec.scorer().x_users, snap.tables[0], "x_users differ: {context}");
    assert_eq!(rec.scorer().x_items, snap.tables[1], "x_items differ: {context}");
    assert_eq!(rec.scorer().y_users, snap.tables[2], "y_users differ: {context}");
    assert_eq!(rec.scorer().y_items, snap.tables[3], "y_items differ: {context}");
    let mut out = Vec::new();
    for (request, want) in &snap.topk {
        rec.recommend(request, &mut out).unwrap();
        assert_eq!(&out, want, "top-K differs for {request:?}: {context}");
    }
}

/// Step `step` of the scripted delta traffic, materialised against the
/// engine's *current* graphs (same script as `tests/wal_recovery.rs`).
fn scripted_delta(step: usize, rec: &Recommender) -> (DomainId, GraphDelta) {
    let gx = rec.seen_graph(DomainId::X);
    let gy = rec.seen_graph(DomainId::Y);
    let (xu, xi) = (gx.n_users() as u32, gx.n_items() as u32);
    let (yu, yi) = (gy.n_users() as u32, gy.n_items() as u32);
    match step % 6 {
        0 => (
            DomainId::X,
            GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(xu, 0), (xu, xi - 1)],
                ..GraphDelta::empty()
            },
        ),
        1 => (
            DomainId::Y,
            GraphDelta {
                add_users: 1,
                add_items: 1,
                edges: vec![(yu, yi), (yu, 0), (0, 1)],
                ..GraphDelta::empty()
            },
        ),
        2 => (DomainId::X, GraphDelta::empty()),
        3 => (
            DomainId::Y,
            GraphDelta {
                add_users: 0,
                add_items: 0,
                edges: vec![(1, 1), (1, 1)],
                ..GraphDelta::empty()
            },
        ),
        4 => (
            DomainId::X,
            GraphDelta {
                add_users: 2,
                add_items: 1,
                edges: vec![(xu, xi), (xu + 1, 2)],
                ..GraphDelta::empty()
            },
        ),
        _ => (
            DomainId::Y,
            GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![(yu, 2)],
                ..GraphDelta::empty()
            },
        ),
    }
}

/// The headline contract: the mapped loader, the aligned-heap image loader,
/// the `CDRIB_NO_MMAP` file fallback and the v1 decode path all serve the
/// exact same engine — bitwise tables, exactly equal top-K — in both f32
/// and int8 precision (the container's quant mirrors vs freshly quantised
/// mirrors).
#[test]
fn mapped_heap_and_v1_engines_agree_bitwise() {
    let (model, scenario) = fixture_model();
    let dir = scratch("bitwise");
    let v2_path = dir.join("serve.cdr2");
    let v2_bytes = save_serve_v2_bytes(&model, &scenario, true, true).unwrap();
    fs::write(&v2_path, &v2_bytes).unwrap();

    let mut v1 = Recommender::from_artifact_bytes(&model.save_bytes(&scenario)).unwrap();
    let mut mapped = Recommender::from_serve_v2_file(&v2_path).unwrap();
    assert!(mapped.is_mapped(), "the file loader must serve borrowed tables");
    assert!(
        mapped.scorer().x_users.is_mapped() && mapped.scorer().y_items.is_mapped(),
        "every embedding table must borrow the mapped region"
    );
    let mut heap = Recommender::from_serve_v2_bytes(&v2_bytes).unwrap();
    // The explicit no-mmap escape hatch: same file, aligned heap buffer.
    std::env::set_var("CDRIB_NO_MMAP", "1");
    let mut fallback = Recommender::from_serve_v2_file(&v2_path).unwrap();
    std::env::remove_var("CDRIB_NO_MMAP");

    let want = snapshot(&mut v1);
    assert_matches(&mut mapped, &want, "mapped vs v1 decode");
    assert_matches(&mut heap, &want, "heap image vs v1 decode");
    assert_matches(&mut fallback, &want, "CDRIB_NO_MMAP fallback vs v1 decode");

    // Int8: the container's frozen quant mirrors score identically to
    // mirrors quantised from the decoded tables at load time.
    v1.set_precision(ScoringPrecision::Int8);
    let want = snapshot(&mut v1);
    for (context, engine) in [
        ("int8 mapped", &mut mapped),
        ("int8 heap image", &mut heap),
        ("int8 fallback", &mut fallback),
    ] {
        engine.set_precision(ScoringPrecision::Int8);
        assert_matches(engine, &want, context);
    }
}

/// Online delta replay over a mapped base: clean tables keep serving from
/// the map, tables a delta touches materialise (copy-on-write) — and every
/// intermediate state is bitwise identical to an engine rebuilt from the
/// plain v1 artifact ingesting the same deltas.
#[test]
fn delta_replay_over_a_mapped_base_matches_a_rebuilt_engine() {
    let (model, scenario) = fixture_model();
    let dir = scratch("delta-replay");
    let v2_path = dir.join("serve.cdr2");
    save_serve_v2_file(&model, &scenario, true, true, &v2_path).unwrap();

    let mut mapped = Recommender::from_serve_v2_file_online(&v2_path).unwrap();
    let mut rebuilt = Recommender::from_artifact_bytes_online(&model.save_bytes(&scenario)).unwrap();
    mapped.set_precision(ScoringPrecision::Int8);
    rebuilt.set_precision(ScoringPrecision::Int8);
    assert!(mapped.is_mapped());
    let want = snapshot(&mut rebuilt);
    assert_matches(&mut mapped, &want, "before any delta");

    // Step 0 touches domain X only: its tables migrate off the map, the Y
    // side keeps serving borrowed rows.
    let (domain, delta) = scripted_delta(0, &rebuilt);
    assert_eq!(domain, DomainId::X);
    rebuilt.apply_delta(domain, &delta).unwrap();
    mapped.apply_delta(domain, &delta).unwrap();
    assert!(
        !mapped.scorer().x_users.is_mapped(),
        "patched tables must materialise owned storage"
    );
    assert!(
        mapped.scorer().y_users.is_mapped() && mapped.scorer().y_items.is_mapped(),
        "untouched tables must keep borrowing the map"
    );
    assert!(mapped.is_mapped());
    assert_matches(&mut mapped, &snapshot(&mut rebuilt), "after delta 0");

    for step in 1..STEPS {
        let (domain, delta) = scripted_delta(step, &rebuilt);
        rebuilt.apply_delta(domain, &delta).unwrap();
        mapped.apply_delta(domain, &delta).unwrap();
        assert_matches(&mut mapped, &snapshot(&mut rebuilt), &format!("after delta {step}"));
    }
}

/// Durable recovery over a v2 base: the same WAL replays over the v1 model
/// artifact and the v2 container to bitwise-identical engines, an untouched
/// v2 base recovers zero-copy, and compaction folds the log into a (v2)
/// checkpoint that recovers to the same state again.
#[test]
fn wal_recovery_over_a_v2_base_matches_the_v1_path() {
    let (model, scenario) = fixture_model();
    let dir = scratch("recovery");
    let base_v1 = dir.join("base.cdrb");
    let base_v2 = dir.join("base.cdr2");
    fs::write(&base_v1, model.save_bytes(&scenario)).unwrap();
    save_serve_v2_file(&model, &scenario, true, true, &base_v2).unwrap();

    // An untouched v2 base recovers zero-copy: validate + map, no decode.
    let fresh_log = dir.join("fresh.wal");
    let (mut cold, report) = Recommender::recover(&base_v2, &fresh_log).unwrap();
    assert!(report.clean() && report.created_log);
    assert!(cold.is_mapped(), "recovery over a quiet v2 base must keep the map");
    let mut v1_engine = Recommender::from_artifact_bytes(&model.save_bytes(&scenario)).unwrap();
    assert_matches(&mut cold, &snapshot(&mut v1_engine), "cold v2 recovery vs v1 load");
    drop(cold);

    // Drive scripted traffic against the v1 base to produce a WAL.
    let log_v1 = dir.join("v1.wal");
    let (mut live, report) = Recommender::recover(&base_v1, &log_v1).unwrap();
    assert!(report.clean() && report.created_log);
    for step in 0..STEPS {
        let (domain, delta) = scripted_delta(step, &live);
        live.apply_delta(domain, &delta).unwrap();
    }
    live.wal_sync().unwrap();
    let want = snapshot(&mut live);

    // The identical log bytes replay over the v2 container (both bases fold
    // through seq 0, so the sequence ranges connect the same way).
    let log_v2 = dir.join("v2.wal");
    fs::copy(&log_v1, &log_v2).unwrap();
    let (mut from_v2, report) = Recommender::recover(&base_v2, &log_v2).unwrap();
    assert!(report.clean(), "v2-base replay must be clean: {report:?}");
    assert_eq!(report.replayed, STEPS);
    assert_eq!(from_v2.wal_applied_seq(), Some(STEPS as u64));
    assert_matches(&mut from_v2, &want, "v2-base recovery vs v1-base live engine");

    // Compaction folds the log into a checkpoint over the v2 base path;
    // recovery from the checkpoint (+ its emptied log) is bitwise again.
    let compaction = from_v2.compact().unwrap();
    assert_eq!(compaction.applied_seq, STEPS as u64);
    drop(from_v2);
    let (mut after, report) = Recommender::recover(&base_v2, &log_v2).unwrap();
    assert!(report.clean(), "post-compaction recovery must be clean: {report:?}");
    assert_eq!(report.base_applied_seq, STEPS as u64);
    assert_matches(&mut after, &want, "post-compaction recovery");
}

/// Back-compat: compaction now writes v2 checkpoints, but a *v1* checkpoint
/// (the exact envelope the pre-refactor `compact()` produced) over a v1
/// base plus a WAL must still recover bitwise — both across the
/// already-folded window and for fresh records appended afterwards.
#[test]
fn v1_base_v1_checkpoint_and_wal_still_recover_bitwise() {
    let (model, scenario) = fixture_model();
    let dir = scratch("v1-checkpoint");
    let base = dir.join("base.cdrb");
    let log = dir.join("deltas.wal");
    let v1_bytes = model.save_bytes(&scenario);
    fs::write(&base, &v1_bytes).unwrap();

    let (mut live, _) = Recommender::recover(&base, &log).unwrap();
    for step in 0..STEPS {
        let (domain, delta) = scripted_delta(step, &live);
        live.apply_delta(domain, &delta).unwrap();
    }
    live.wal_sync().unwrap();
    let want = snapshot(&mut live);
    let applied = live.wal_applied_seq().unwrap();
    assert_eq!(applied, STEPS as u64);

    // Exactly what the pre-v2 compactor wrote: a v1 checkpoint envelope
    // around the base model bytes and the folded graphs.
    let checkpoint = wal::encode_checkpoint(
        &v1_bytes,
        live.seen_graph(DomainId::X),
        live.seen_graph(DomainId::Y),
        applied,
    );
    drop(live);
    let ck_base = dir.join("ck.cdrb");
    let ck_log = dir.join("ck.wal");
    fs::write(&ck_base, &checkpoint).unwrap();
    fs::copy(&log, &ck_log).unwrap();

    // Old log + v1 checkpoint: every record is already folded, recovery
    // skips them all and lands exactly on the live state.
    let (mut rec, report) = Recommender::recover(&ck_base, &ck_log).unwrap();
    assert!(report.clean(), "v1 checkpoint recovery must be clean: {report:?}");
    assert_eq!(report.base_applied_seq, applied);
    assert_eq!(report.skipped, STEPS);
    assert_eq!(report.replayed, 0);
    assert_matches(&mut rec, &want, "v1 checkpoint + already-folded log");

    // Fresh traffic after the checkpoint appends and recovers normally.
    let (domain, delta) = scripted_delta(STEPS, &rec);
    rec.apply_delta(domain, &delta).unwrap();
    rec.wal_sync().unwrap();
    let want_after = snapshot(&mut rec);
    drop(rec);
    let (mut again, report) = Recommender::recover(&ck_base, &ck_log).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.replayed, 1);
    assert_matches(&mut again, &want_after, "v1 checkpoint + one fresh record");
}
