//! Compressed-sparse-row matrices.
//!
//! The adjacency matrices `A^X`, `A^Y` of the user-item bipartite graphs are
//! the only sparse operands in CDRIB's computation graph. They are constants
//! with respect to differentiation (only the dense embeddings flow
//! gradients), so the autodiff tape treats a [`CsrMatrix`] as frozen data and
//! only needs `S * X` (forward) and `S^T * G` (backward).

use crate::error::{Result, TensorError};
use crate::kernels::{self, CsrView};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed-sparse-row format with `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` is the column/value range of row `r`.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets. Duplicate entries
    /// are summed. Triplets may arrive in any order.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(TensorError::IndexOutOfBounds { index: r, bound: rows });
            }
            if c >= cols {
                return Err(TensorError::IndexOutOfBounds { index: c, bound: cols });
            }
        }
        // Counting sort by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for r in 0..rows {
            counts[r + 1] += counts[r];
        }
        let mut order: Vec<usize> = vec![0; triplets.len()];
        {
            let mut cursor = counts.clone();
            for (i, &(r, _, _)) in triplets.iter().enumerate() {
                order[cursor[r]] = i;
                cursor[r] += 1;
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let start = counts[r];
            let end = counts[r + 1];
            let mut row_entries: Vec<(usize, f32)> = order[start..end]
                .iter()
                .map(|&i| (triplets[i].1, triplets[i].2))
                .collect();
            row_entries.sort_unstable_by_key(|&(c, _)| c);
            // merge duplicates
            let mut merged: Vec<(usize, f32)> = Vec::with_capacity(row_entries.len());
            for (c, v) in row_entries {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                indices.push(c as u32);
                values.push(v);
            }
            indptr[r + 1] = indices.len();
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds an unweighted (all ones) CSR matrix from edges.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let triplets: Vec<(usize, usize, f32)> = edges.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        Self::from_triplets(rows, cols, &triplets)
    }

    /// An empty matrix with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density of the matrix: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Iterator over the stored entries of row `r` as `(col, value)` pairs.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.indptr[r];
        let end = self.indptr[r + 1];
        self.indices[start..end]
            .iter()
            .zip(self.values[start..end].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Column indices of row `r`.
    pub fn row_indices(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Returns the stored value at `(r, c)` if present.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let cols = self.row_indices(r);
        cols.binary_search(&(c as u32))
            .ok()
            .map(|k| self.values[self.indptr[r] + k])
    }

    /// Row-normalises the matrix: each stored row sums to one (zero rows stay
    /// zero). This is the `Norm(·)` operator of Eq. (2)/(3).
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            let s: f32 = self.values[start..end].iter().sum();
            if s != 0.0 {
                for v in &mut out.values[start..end] {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Symmetric (GCN-style) normalisation `D_r^{-1/2} A D_c^{-1/2}`, used by
    /// NGCF/PPGN baselines.
    pub fn sym_normalized(&self) -> CsrMatrix {
        let mut row_deg = vec![0.0f32; self.rows];
        let mut col_deg = vec![0.0f32; self.cols];
        for (r, deg) in row_deg.iter_mut().enumerate() {
            for (c, v) in self.row_iter(r) {
                *deg += v;
                col_deg[c] += v;
            }
        }
        let mut out = self.clone();
        for (r, &deg) in row_deg.iter().enumerate() {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            let dr = if deg > 0.0 { deg.sqrt() } else { 1.0 };
            for k in start..end {
                let c = self.indices[k] as usize;
                let dc = if col_deg[c] > 0.0 { col_deg[c].sqrt() } else { 1.0 };
                out.values[k] /= dr * dc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let pos = cursor[c];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Dense copy (for tests and tiny matrices only).
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                t.set(r, c, v);
            }
        }
        t
    }

    /// Borrowed raw-parts view for the [`kernels`] spmm entry points.
    pub fn view(&self) -> CsrView<'_> {
        CsrView {
            rows: self.rows,
            cols: self.cols,
            indptr: &self.indptr,
            indices: &self.indices,
            values: &self.values,
        }
    }

    /// Sparse-dense product `self (r x c) * dense (c x n) -> (r x n)`.
    pub fn spmm(&self, dense: &Tensor) -> Result<Tensor> {
        if self.cols != dense.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: dense.shape(),
            });
        }
        let n = dense.cols();
        let mut out = Tensor::zeros(self.rows, n);
        kernels::spmm(self.view(), n, dense.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// [`CsrMatrix::spmm`] through the single-threaded reference kernel, for
    /// parity tests and benchmarks.
    pub fn spmm_serial(&self, dense: &Tensor) -> Result<Tensor> {
        if self.cols != dense.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_serial",
                lhs: (self.rows, self.cols),
                rhs: dense.shape(),
            });
        }
        let n = dense.cols();
        let mut out = Tensor::zeros(self.rows, n);
        kernels::spmm_serial(self.view(), n, dense.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// Transposed sparse-dense product `self^T (c x r) * dense (r x n) -> (c x n)`
    /// computed without materialising the transpose. Used by the backward pass
    /// of the differentiable `spmm` node.
    pub fn spmm_transpose(&self, dense: &Tensor) -> Result<Tensor> {
        if self.rows != dense.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm_transpose",
                lhs: (self.cols, self.rows),
                rhs: dense.shape(),
            });
        }
        let n = dense.cols();
        let mut out = Tensor::zeros(self.cols, n);
        kernels::spmm_transpose(self.view(), n, dense.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// Per-row degrees (sum of absolute values treated as counts for binary
    /// adjacency matrices).
    pub fn row_degrees(&self) -> Vec<f32> {
        (0..self.rows).map(|r| self.row_iter(r).map(|(_, v)| v).sum()).collect()
    }

    /// Rebuilds the matrix **in place** as the row-normalisation of a binary
    /// adjacency whose row `r` has the sorted column indices `row_cols(r)`:
    /// every stored value of row `r` becomes `1 / row_cols(r).len()` (empty
    /// rows stay empty). This is `Norm(·)` of Eq. (2)/(3) computed without a
    /// fresh allocation: the `indptr`/`indices`/`values` vectors are cleared
    /// and refilled, so once their capacity covers the edge count, delta
    /// batches rebuild the normalised views allocation-free
    /// (`tests/alloc_regression.rs`).
    ///
    /// The values are **bitwise identical** to
    /// `CsrMatrix::from_edges(..).row_normalized()`: that path sums `deg`
    /// ones in `f32` (exact for `deg < 2^24`) and divides, which equals the
    /// `1.0 / deg as f32` computed here.
    pub fn rebuild_row_normalized_uniform<'a, F: Fn(usize) -> &'a [u32]>(
        &mut self,
        rows: usize,
        cols: usize,
        row_cols: F,
    ) {
        self.rows = rows;
        self.cols = cols;
        self.indptr.clear();
        self.indices.clear();
        self.values.clear();
        self.indptr.push(0);
        for r in 0..rows {
            let row = row_cols(r);
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {r}: column indices must be sorted and deduplicated"
            );
            debug_assert!(row.iter().all(|&c| (c as usize) < cols), "row {r}: column out of range");
            let norm = 1.0 / row.len() as f32;
            self.indices.extend_from_slice(row);
            self.values.resize(self.indices.len(), norm);
            self.indptr.push(self.indices.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0],
        //  [0, 5, 0]]
        CsrMatrix::from_triplets(4, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (3, 1, 5.0)]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.get(9, 0), None);
        assert_eq!(m.row_nnz(2), 2);
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-9);
        assert_eq!(m.row_degrees(), vec![3.0, 0.0, 7.0, 5.0]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), Some(3.5));
    }

    #[test]
    fn out_of_bounds_triplets_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn row_normalization_sums_to_one() {
        let m = sample().row_normalized();
        let dense = m.to_dense();
        assert!((dense.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(dense.row(1).iter().sum::<f32>(), 0.0);
        assert!((dense.row(2).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sym_normalization_matches_manual() {
        let m = CsrMatrix::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let s = m.sym_normalized();
        // row degrees: [2,1]; col degrees: [2,1]
        assert!((s.get(0, 0).unwrap() - 1.0 / 2.0).abs() < 1e-6);
        assert!((s.get(0, 1).unwrap() - 1.0 / (2.0f32.sqrt())).abs() < 1e-6);
        assert!((s.get(1, 0).unwrap() - 1.0 / (2.0f32.sqrt())).abs() < 1e-6);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
        assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let x = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sparse_result = m.spmm(&x).unwrap();
        let dense_result = m.to_dense().matmul(&x).unwrap();
        assert_eq!(sparse_result, dense_result);
        assert!(m.spmm(&Tensor::zeros(5, 2)).is_err());
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = sample();
        let g = Tensor::from_vec(4, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 1.0, 3.0, -2.0]).unwrap();
        let a = m.spmm_transpose(&g).unwrap();
        let b = m.to_dense().transpose().matmul(&g).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert!(m.spmm_transpose(&Tensor::zeros(3, 2)).is_err());
    }

    #[test]
    fn rebuild_row_normalized_uniform_matches_classic_path() {
        // The in-place rebuild must reproduce `from_edges(..).row_normalized()`
        // bit for bit — the online-update path swaps one for the other.
        let rows: Vec<Vec<u32>> = vec![vec![0, 2, 5], vec![], vec![1], vec![0, 1, 2, 3, 4, 5, 6]];
        let edges: Vec<(usize, usize)> = rows
            .iter()
            .enumerate()
            .flat_map(|(r, cs)| cs.iter().map(move |&c| (r, c as usize)))
            .collect();
        let classic = CsrMatrix::from_edges(4, 7, &edges).unwrap().row_normalized();
        let mut rebuilt = CsrMatrix::empty(1, 1);
        rebuilt.rebuild_row_normalized_uniform(4, 7, |r| &rows[r]);
        assert_eq!(rebuilt, classic);
        // Rebuilding again over the same storage is idempotent and in place.
        rebuilt.rebuild_row_normalized_uniform(4, 7, |r| &rows[r]);
        assert_eq!(rebuilt, classic);
        // Shrinking to a smaller shape works too.
        rebuilt.rebuild_row_normalized_uniform(2, 7, |r| &rows[r]);
        assert_eq!(rebuilt.rows(), 2);
        assert_eq!(rebuilt.nnz(), 3);
        assert_eq!(rebuilt.get(0, 2), Some(1.0 / 3.0));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        let x = Tensor::ones(4, 2);
        assert_eq!(m.spmm(&x).unwrap().sum(), 0.0);
    }
}
