//! A counting global allocator for allocation-regression tests.
//!
//! Zero-allocation training steps are a *measured* property, not an assumed
//! one: the `step_perf` benchmark binary and the `alloc_regression`
//! integration test install [`CountingAlloc`] as the process's global
//! allocator and assert that the steady-state allocation count of a warm
//! training loop is zero.
//!
//! The module is gated behind the non-default `alloc-track` feature so that
//! normal builds carry neither the type nor the temptation to install it;
//! when compiled, it is inert until a binary opts in with
//! `#[global_allocator]`.
//!
//! ```ignore
//! use cdrib_tensor::alloc_track::{allocation_count, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = allocation_count();
//! run_warm_training_epoch();
//! assert_eq!(allocation_count() - before, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// `realloc` counts as one allocation (it may move the block); `dealloc` is
/// not counted — the regression tests care about allocator *requests*, which
/// is what pooling eliminates.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System`; the counters are atomics
// and allocate nothing themselves.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Number of allocation requests since process start (0 unless
/// [`CountingAlloc`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Number of bytes requested since process start (0 unless
/// [`CountingAlloc`] is installed as the global allocator).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
