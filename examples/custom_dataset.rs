//! Using the library on your own interaction data.
//!
//! This example builds a `RawCdrData` by hand (in practice you would parse
//! log files or review dumps), runs the paper's preprocessing and cold-start
//! split, inspects the resulting scenario, and trains CDRIB on it.
//!
//! Run with: `cargo run --release --example custom_dataset`

use cdrib::data::{RawCdrData, RawDomain};
use cdrib::prelude::*;
use rand::Rng;

/// Pretend these came from two application logs: "Books" and "Podcasts".
fn load_interactions() -> RawCdrData {
    // 120 overlapping users, 200 book-only users, 150 podcast-only users.
    let n_overlap = 120;
    let mut rng = cdrib::tensor::rng::component_rng(99, "custom-data");
    let mut gen_domain = |name: &str, n_users: usize, n_items: usize, taste_groups: usize| {
        let mut edges = Vec::new();
        for u in 0..n_users {
            // Users in the same taste group like the same slice of the catalogue.
            let group = u % taste_groups;
            let group_start = group * n_items / taste_groups;
            let group_end = (group + 1) * n_items / taste_groups;
            let k = 8 + (rng.gen::<u32>() % 8) as usize;
            for _ in 0..k {
                let item = if rng.gen::<f32>() < 0.8 {
                    rng.gen_range(group_start..group_end)
                } else {
                    rng.gen_range(0..n_items)
                };
                edges.push((u as u32, item as u32));
            }
        }
        RawDomain {
            name: name.to_string(),
            n_users,
            n_items,
            edges,
        }
    };
    RawCdrData {
        x: gen_domain("Books", n_overlap + 200, 260, 4),
        y: gen_domain("Podcasts", n_overlap + 150, 200, 4),
        n_overlap,
    }
}

fn main() {
    let raw = load_interactions();
    println!(
        "Raw data: Books {} users / {} interactions, Podcasts {} users / {} interactions, {} overlapping users",
        raw.x.n_users,
        raw.x.n_edges(),
        raw.y.n_users,
        raw.y.n_edges(),
        raw.n_overlap
    );

    // Paper preprocessing: drop items with <10 and users with <5 interactions.
    let filtered = raw.filtered(5, 10).expect("filtering");
    println!(
        "After filtering: Books {}x{} ({} edges), Podcasts {}x{} ({} edges), overlap {}",
        filtered.x.n_users,
        filtered.x.n_items,
        filtered.x.n_edges(),
        filtered.y.n_users,
        filtered.y.n_items,
        filtered.y.n_edges(),
        filtered.n_overlap
    );

    // Cold-start split: 20% of overlap users held out, half per direction.
    let scenario = CdrScenario::from_raw("Books-Podcasts", &filtered, SplitConfig::default()).expect("split");
    scenario.validate().expect("valid scenario");
    let stats = scenario.stats();
    println!(
        "Cold-start users: {} evaluated in Podcasts, {} evaluated in Books\n",
        stats.domain_y.n_cold_start_users, stats.domain_x.n_cold_start_users
    );

    // Train CDRIB and report both directions.
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        epochs: 60,
        eval_every: 15,
        ..CdribConfig::default()
    };
    let trained = train(&config, &scenario).expect("training");
    let eval_cfg = EvalConfig {
        n_negatives: cdrib::core::validation_negatives(&scenario),
        seed: 5,
        max_cases: None,
    };
    let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).expect("eval");
    println!(
        "Books -> Podcasts: MRR {:.2}%  NDCG@10 {:.2}%  HR@10 {:.2}%",
        x2y.metrics.mrr * 100.0,
        x2y.metrics.ndcg10 * 100.0,
        x2y.metrics.hr10 * 100.0
    );
    println!(
        "Podcasts -> Books: MRR {:.2}%  NDCG@10 {:.2}%  HR@10 {:.2}%",
        y2x.metrics.mrr * 100.0,
        y2x.metrics.ndcg10 * 100.0,
        y2x.metrics.hr10 * 100.0
    );
}
