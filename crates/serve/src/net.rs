//! The batched TCP serving front-end: cross-connection request coalescing,
//! admission control, and epoch-swapped hot reload over the wire.
//!
//! ## Architecture
//!
//! The offline environment has no async runtime, so the server is plain
//! `std::net` + threads, shaped like the kernel fan-out rather than an
//! event loop:
//!
//! * an **acceptor** thread owns the non-blocking [`TcpListener`] and
//!   spawns one reader thread per connection;
//! * each **reader** thread decodes frames ([`crate::proto`]) off its
//!   socket. Handshakes and stats are answered inline; a malformed frame
//!   or a version-mismatched `Hello` gets a typed error and then a real
//!   socket close (the pipelined frames behind it are never served).
//!   `Recommend` and
//!   `IngestDelta` jobs go into the connection's **bounded** queue. A full
//!   queue sheds the job with a typed [`ServerMsg::Overloaded`] response
//!   instead of buffering without bound — under overload the server's
//!   memory and the p99 of *accepted* requests stay flat while the shed
//!   counter grows (the load generator's overload gate);
//! * one **coalescer** thread owns the [`Recommender`]. Per tick it waits
//!   for work, lets the batch build for at most
//!   [`ServerConfig::max_wait`], then drains the per-connection queues
//!   **round-robin** (one job per connection per pass, so a single
//!   firehose connection cannot starve the others) into one
//!   [`Recommender::recommend_batch_outcomes`] call of up to
//!   [`ServerConfig::max_batch`] requests — the SIMD batch path amortises
//!   per-request overhead across connections, which is where the ≥5×
//!   saturation throughput over single-request-per-connection serving
//!   comes from (`BENCH_serve.json`, `server` section). Deltas drained in
//!   the same tick are applied *before* the batch runs: a hot reload is an
//!   epoch swap between batches, never a dropped in-flight request.
//!   Responses are encoded into one pooled buffer per connection and
//!   flushed with a single write per connection per tick.
//!
//! Within a connection, queued responses come back in request order;
//! inline replies (hello, stats, sheds, protocol errors) may interleave —
//! clients match on `req_id`, not arrival order.
//!
//! The warm pipeline — frame decode, queue, coalesced batch, pooled
//! response encode — allocates nothing (`tests/alloc_regression.rs` drives
//! it sans-IO); parity with direct engine calls is bitwise
//! (`tests/net_serving.rs` and the `load_gen` parity gate).

use crate::error::ServeError;
use crate::proto::{self, ClientMsg, DeltaOk, HelloOk, ProtoError, ServerMsg, StatsOk, PROTO_VERSION};
use crate::recommender::{Recommender, Request};
use crate::topk::Recommendation;
use cdrib_data::DomainId;
use cdrib_graph::GraphDelta;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coalescing and admission-control knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most requests drained into one coalesced batch per tick.
    pub max_batch: usize,
    /// How long a tick lets the batch build after the first pending job —
    /// the latency the slowest-arriving request in a tick pays for the
    /// batch's amortisation.
    pub max_wait: Duration,
    /// Per-connection queue bound; a job arriving at a full queue is shed
    /// with a typed [`ServerMsg::Overloaded`] response.
    pub queue_capacity: usize,
    /// Worker threads the coalesced batch fans out over
    /// ([`Recommender::recommend_batch_with_workers`] semantics; clamped to
    /// the engine's scratch count).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 256,
            max_wait: Duration::from_micros(200),
            queue_capacity: 512,
            workers: cdrib_tensor::kernels::parallelism().max(1),
        }
    }
}

/// Monotone server counters, readable locally ([`Server::stats`]) and over
/// the wire ([`ClientMsg::Stats`]).
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    deltas_applied: AtomicU64,
    batches: AtomicU64,
    epoch: AtomicU64,
    connections: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted into a queue.
    pub accepted: u64,
    /// Requests answered with recommendations.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Deltas applied over the wire.
    pub deltas_applied: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Current engine epoch.
    pub epoch: u64,
    /// Currently open connections.
    pub connections: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// A queued unit of work, preserving per-connection FIFO order between
/// requests and deltas.
enum Job {
    Recommend {
        req_id: u64,
        request: Request,
    },
    Delta {
        req_id: u64,
        domain: DomainId,
        delta: GraphDelta,
    },
}

/// The socket's write half plus its pooled encode buffer. Readers (inline
/// replies) and the coalescer (batch flushes) both write under this lock.
struct ConnWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ConnWriter {
    /// Encodes and writes one message immediately (inline-reply path).
    fn send(&mut self, msg: &ServerMsg) -> io::Result<()> {
        self.buf.clear();
        proto::write_frame(&mut self.buf, msg);
        self.stream.write_all(&self.buf)
    }
}

/// Per-connection shared state between its reader thread and the coalescer.
struct Conn {
    queue: Mutex<VecDeque<Job>>,
    writer: Mutex<ConnWriter>,
    closed: AtomicBool,
}

/// State shared by every server thread.
struct Shared {
    config: ServerConfig,
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Jobs queued but not yet drained by the coalescer; guarded by its own
    /// mutex so readers can wake the coalescer without touching the
    /// connection list.
    pending: Mutex<usize>,
    wake: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }
}

/// Locks a per-connection queue, recovering from poisoning: a reader that
/// panicked while holding the lock leaves the `VecDeque` itself consistent
/// (push/pop are atomic w.r.t. its invariants), and treating the queue as
/// lost would strand its still-counted jobs in `pending` and wedge the
/// coalescer.
fn lock_queue(queue: &Mutex<VecDeque<Job>>) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
    queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Locks the pending-job counter, recovering from poisoning (the guarded
/// value is a bare `usize`; no partial update is possible).
fn lock_pending(shared: &Shared) -> std::sync::MutexGuard<'_, usize> {
    shared.pending.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running serving front-end. Dropping (or calling [`Server::shutdown`])
/// stops the acceptor and coalescer and joins them; reader threads exit on
/// their own within one read-timeout tick.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    coalescer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving
    /// `rec` with the given knobs.
    pub fn spawn(rec: Recommender, addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            conns: Mutex::new(Vec::new()),
            pending: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        shared.stats.epoch.store(rec.epoch(), Ordering::Relaxed);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cdrib-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        let coalescer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cdrib-coalescer".into())
                .spawn(move || coalescer_loop(&shared, rec))?
        };
        Ok(Server {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            coalescer: Some(coalescer),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Whether the server is still accepting work (no shutdown requested).
    pub fn running(&self) -> bool {
        !self.shared.shutting_down()
    }

    /// Blocks until a shutdown is requested — over the wire
    /// ([`ClientMsg::Shutdown`]) or locally — then returns. The binary's
    /// main thread parks here.
    pub fn wait(&self) {
        while !self.shared.shutting_down() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Requests shutdown, drains queued work, and joins the server threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.begin_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.coalescer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Batch responses are single buffered writes; Nagle would
                // only add latency on the small inline replies.
                stream.set_nodelay(true).ok();
                let write_half = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let conn = Arc::new(Conn {
                    queue: Mutex::new(VecDeque::with_capacity(shared.config.queue_capacity)),
                    writer: Mutex::new(ConnWriter {
                        stream: write_half,
                        buf: Vec::new(),
                    }),
                    closed: AtomicBool::new(false),
                });
                shared.conns.lock().expect("conns lock").push(Arc::clone(&conn));
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                // Readers are detached: they exit on EOF, on error, or
                // within one read-timeout tick of a shutdown.
                let _ = std::thread::Builder::new()
                    .name("cdrib-reader".into())
                    .spawn(move || reader_loop(&shared, &conn, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // accept() errors are per-attempt, not fatal to the
                // listener: ECONNABORTED (peer reset mid-handshake) or
                // EMFILE (fd exhaustion) are transient, and a server that
                // reports running() must keep accepting. Back off and
                // retry; only shutdown stops the acceptor.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, mut stream: TcpStream) {
    // The timeout bounds how long a quiet connection keeps its reader from
    // noticing a shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(20))).ok();
    let mut frames = proto::FrameReader::new();
    let mut chunk = vec![0u8; 16 * 1024];
    'read: loop {
        if shared.shutting_down() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                frames.push_bytes(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(None) => break,
                        Ok(Some(body)) => match proto::decode_client(body) {
                            Ok(msg) => {
                                if !handle_client_msg(shared, conn, msg) {
                                    break 'read;
                                }
                            }
                            Err(e) => {
                                send_protocol_error(conn, &e);
                                break 'read;
                            }
                        },
                        Err(e) => {
                            send_protocol_error(conn, &e);
                            break 'read;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => continue,
            Err(_) => break,
        }
    }
    conn.closed.store(true, Ordering::Release);
    // Closing the connection must actually close the socket: the write-half
    // clone inside `conn.writer` keeps the fd alive until the coalescer
    // prunes the connection, and the coalescer only ticks when work is
    // pending — an incompatible or misbehaving client would otherwise wait
    // on a half-open socket forever. Shutting down here (both halves — the
    // clones share one socket) sends the FIN right after any typed error
    // already written. The one exception is a server-wide shutdown, where
    // the socket stays open so responses to queued jobs can still drain.
    if !shared.shutting_down() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    shared.stats.connections.fetch_sub(1, Ordering::Relaxed);
    // The coalescer prunes closed connections on its next tick.
    shared.wake.notify_all();
}

/// Framing/decoding is unrecoverable mid-stream: answer with a typed error
/// (best effort) and let the caller close the connection.
fn send_protocol_error(conn: &Conn, e: &ProtoError) {
    let msg = ServerMsg::Error(proto::ErrorMsg {
        req_id: 0,
        code: proto::ErrorCode::BadRequest,
        detail: e.to_string(),
    });
    if let Ok(mut w) = conn.writer.lock() {
        let _ = w.send(&msg);
    }
}

/// Dispatches one decoded message. Returns `false` when the connection (or
/// the whole server, for `Shutdown`) should stop reading.
fn handle_client_msg(shared: &Arc<Shared>, conn: &Arc<Conn>, msg: ClientMsg) -> bool {
    match msg {
        ClientMsg::Hello(h) => {
            if h.version == PROTO_VERSION {
                send_inline(
                    conn,
                    &ServerMsg::HelloOk(HelloOk {
                        version: PROTO_VERSION,
                        epoch: shared.stats.epoch.load(Ordering::Relaxed),
                    }),
                )
            } else {
                // An incompatible client gets the typed error and nothing
                // else: close the connection rather than best-effort-serving
                // frames whose meaning may have changed across versions.
                send_inline(
                    conn,
                    &ServerMsg::Error(proto::ErrorMsg {
                        req_id: 0,
                        code: proto::ErrorCode::UnsupportedVersion,
                        detail: format!("server speaks protocol {PROTO_VERSION}, client sent {}", h.version),
                    }),
                );
                false
            }
        }
        ClientMsg::Stats(req_id) => {
            let s = shared.stats.snapshot();
            send_inline(
                conn,
                &ServerMsg::Stats(StatsOk {
                    req_id,
                    epoch: s.epoch,
                    accepted: s.accepted,
                    served: s.served,
                    shed: s.shed,
                    deltas_applied: s.deltas_applied,
                    batches: s.batches,
                    connections: s.connections,
                }),
            )
        }
        ClientMsg::Recommend(r) => enqueue(
            shared,
            conn,
            r.req_id,
            Job::Recommend {
                req_id: r.req_id,
                request: r.request(),
            },
        ),
        ClientMsg::IngestDelta(i) => {
            let req_id = i.req_id;
            enqueue(
                shared,
                conn,
                req_id,
                Job::Delta {
                    req_id,
                    domain: i.domain,
                    delta: i.delta,
                },
            )
        }
        ClientMsg::Shutdown => {
            send_inline(conn, &ServerMsg::ShuttingDown);
            shared.begin_shutdown();
            false
        }
    }
}

fn send_inline(conn: &Conn, msg: &ServerMsg) -> bool {
    match conn.writer.lock() {
        Ok(mut w) => w.send(msg).is_ok(),
        Err(_) => false,
    }
}

/// Admission control: a job either joins its connection's bounded queue or
/// is shed *now* with a typed `Overloaded` response — the server never
/// buffers beyond `queue_capacity` per connection, so offered load beyond
/// capacity turns into sheds, not queue growth.
fn enqueue(shared: &Arc<Shared>, conn: &Arc<Conn>, req_id: u64, job: Job) -> bool {
    let accepted = {
        let mut queue = lock_queue(&conn.queue);
        if queue.len() >= shared.config.queue_capacity {
            false
        } else {
            queue.push_back(job);
            // Count the job before releasing the queue lock: the coalescer
            // pops under the same lock, so it can never drain a job that
            // `pending` has not yet counted (which would underflow the
            // counter). Lock order is queue → pending everywhere.
            *lock_pending(shared) += 1;
            true
        }
    };
    if accepted {
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shared.wake.notify_all();
        true
    } else {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        send_inline(conn, &ServerMsg::Overloaded(req_id))
    }
}

fn coalescer_loop(shared: &Arc<Shared>, mut rec: Recommender) {
    // Tick-local pools, all reused: the warm pipeline allocates nothing.
    let mut tick_conns: Vec<Arc<Conn>> = Vec::new();
    let mut requests: Vec<Request> = Vec::new();
    let mut origins: Vec<(usize, u64)> = Vec::new();
    let mut responses: Vec<Vec<Recommendation>> = Vec::new();
    let mut outcomes: Vec<crate::error::Result<()>> = Vec::new();
    let mut rr_offset = 0usize;
    loop {
        // Wait for work (or shutdown). The timeout bounds shutdown latency.
        {
            let mut pending = lock_pending(shared);
            while *pending == 0 {
                if shared.shutting_down() {
                    return;
                }
                let (p, _) = shared
                    .wake
                    .wait_timeout(pending, Duration::from_millis(20))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                pending = p;
            }
        }
        // Let the batch build — the coalescing window. The window closes on
        // whichever comes first: the batch is already full (`max_batch`
        // pending — waiting longer cannot grow it), the full `max_wait`
        // budget elapses (the latency bound), or arrivals stall (no new job
        // within an idle-gap slice of the budget — a lone request under
        // light load must not pay the whole window, which is where the
        // closed-loop p50 lives). Skipped during shutdown so draining
        // finishes promptly.
        if !shared.config.max_wait.is_zero() && !shared.shutting_down() {
            let max_wait = shared.config.max_wait;
            let idle_gap = (max_wait / 8).max(Duration::from_micros(1));
            let window_start = Instant::now();
            let mut pending = lock_pending(shared);
            loop {
                if *pending >= shared.config.max_batch || shared.shutting_down() {
                    break;
                }
                let elapsed = window_start.elapsed();
                if elapsed >= max_wait {
                    break;
                }
                let before = *pending;
                let slice = idle_gap.min(max_wait - elapsed);
                let (p, timeout) = shared
                    .wake
                    .wait_timeout(pending, slice)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                pending = p;
                if *pending == before && timeout.timed_out() {
                    break;
                }
            }
        }

        // Snapshot live connections, pruning ones that are closed and fully
        // drained (their Arc dies here). A closed connection with queued
        // jobs is kept — even behind a poisoned lock — until the drain below
        // empties it, so every job counted in `pending` is eventually popped
        // and decremented.
        tick_conns.clear();
        {
            let mut conns = shared.conns.lock().expect("conns lock");
            conns.retain(|c| !(c.closed.load(Ordering::Acquire) && lock_queue(&c.queue).is_empty()));
            tick_conns.extend(conns.iter().cloned());
        }
        if tick_conns.is_empty() {
            if shared.shutting_down() {
                return;
            }
            continue;
        }

        // Round-robin drain: one job per connection per pass, up to
        // max_batch, starting at a rotating offset — no connection can fill
        // the whole batch while others wait, and per-connection order is
        // preserved. Deltas apply immediately (before this tick's batch):
        // the epoch swap happens between batches, in-flight requests simply
        // score against the new tables.
        requests.clear();
        origins.clear();
        let n = tick_conns.len();
        rr_offset = (rr_offset + 1) % n;
        let mut drained = 0usize;
        'drain: loop {
            let mut any = false;
            for i in 0..n {
                if drained >= shared.config.max_batch {
                    break 'drain;
                }
                let ci = (rr_offset + i) % n;
                let job = lock_queue(&tick_conns[ci].queue).pop_front();
                let Some(job) = job else { continue };
                any = true;
                drained += 1;
                match job {
                    Job::Recommend { req_id, request } => {
                        origins.push((ci, req_id));
                        requests.push(request);
                    }
                    Job::Delta { req_id, domain, delta } => {
                        let reply = match rec.apply_delta(domain, &delta) {
                            Ok(outcome) => {
                                shared.stats.deltas_applied.fetch_add(1, Ordering::Relaxed);
                                shared.stats.epoch.store(outcome.epoch, Ordering::Relaxed);
                                ServerMsg::DeltaApplied(DeltaOk {
                                    req_id,
                                    epoch: outcome.epoch,
                                    users_added: outcome.users_added as u64,
                                    items_added: outcome.items_added as u64,
                                    edges_added: outcome.edges_added as u64,
                                    wal_seq: outcome.wal_seq.unwrap_or(0),
                                })
                            }
                            Err(e) => ServerMsg::Error(proto::delta_error(req_id, &e)),
                        };
                        if !send_inline(&tick_conns[ci], &reply) {
                            tick_conns[ci].closed.store(true, Ordering::Release);
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }
        {
            // Saturating as a backstop: accounting is consistent by
            // construction (increments happen under the queue lock before a
            // job is poppable), but an underflow here must never panic the
            // coalescer or wrap the counter into a permanent busy-spin.
            let mut pending = lock_pending(shared);
            *pending = pending.saturating_sub(drained);
        }
        // During shutdown a full round-robin pass that pops nothing means
        // every reachable queue is empty — exit even if `pending` still
        // claims otherwise, so shutdown() can never hang on a stale count.
        if drained == 0 && shared.shutting_down() {
            return;
        }
        if requests.is_empty() {
            continue;
        }

        // One coalesced engine call for the whole cross-connection batch.
        rec.recommend_batch_outcomes(&requests, &mut responses, &mut outcomes, shared.config.workers);
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        let epoch = rec.epoch();

        // Encode every connection's responses into its pooled buffer and
        // flush them with one write per connection.
        for (ci, conn) in tick_conns.iter().enumerate() {
            let mut writer = match conn.writer.lock() {
                Ok(w) => w,
                Err(_) => continue,
            };
            writer.buf.clear();
            let mut served = 0u64;
            for (slot, &(oci, req_id)) in origins.iter().enumerate() {
                if oci != ci {
                    continue;
                }
                match &outcomes[slot] {
                    Ok(()) => {
                        proto::encode_recommendations_into(&mut writer.buf, req_id, epoch, &responses[slot]);
                        served += 1;
                    }
                    Err(e) => {
                        proto::write_frame(&mut writer.buf, &ServerMsg::Error(proto::recommend_error(req_id, e)));
                    }
                }
            }
            if served > 0 {
                shared.stats.served.fetch_add(served, Ordering::Relaxed);
            }
            let ConnWriter { stream, buf } = &mut *writer;
            if !buf.is_empty() && stream.write_all(buf).is_err() {
                conn.closed.store(true, Ordering::Release);
            }
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket I/O failed.
    Io(io::Error),
    /// The server sent bytes that do not frame or decode.
    Proto(ProtoError),
    /// The server closed the connection.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket i/o failed: {e}"),
            ClientError::Proto(e) => write!(f, "server sent an invalid frame: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A minimal blocking protocol client — what the tests, the load generator
/// and the CI smoke job speak through.
pub struct Client {
    stream: TcpStream,
    frames: proto::FrameReader,
    chunk: Vec<u8>,
    wbuf: Vec<u8>,
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<(Client, HelloOk), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            frames: proto::FrameReader::new(),
            chunk: vec![0u8; 16 * 1024],
            wbuf: Vec::new(),
        };
        client.send(&ClientMsg::Hello(crate::proto::HelloReq { version: PROTO_VERSION }))?;
        match client.recv()? {
            ServerMsg::HelloOk(ok) => Ok((client, ok)),
            other => Err(ClientError::Proto(ProtoError::Decode(serde::Error::invalid_variant(
                "HelloOk",
                match other {
                    ServerMsg::Error(_) => 5,
                    _ => u32::MAX,
                },
            )))),
        }
    }

    /// Encodes and writes one message.
    pub fn send(&mut self, msg: &ClientMsg) -> Result<(), ClientError> {
        self.wbuf.clear();
        proto::write_frame(&mut self.wbuf, msg);
        self.stream.write_all(&self.wbuf)?;
        Ok(())
    }

    /// Writes pre-encoded frames (the load generator batches catch-up
    /// arrivals into one syscall).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Blocks until the next server message arrives.
    pub fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        loop {
            match self.frames.next_frame() {
                Err(e) => return Err(e.into()),
                Ok(Some(body)) => return Ok(proto::decode_server(body)?),
                Ok(None) => {}
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            self.frames.push_bytes(&self.chunk[..n]);
        }
    }

    /// Sends one recommend request and waits for its (matching) response.
    pub fn recommend(&mut self, req_id: u64, request: &Request) -> Result<ServerMsg, ClientError> {
        self.send(&ClientMsg::Recommend(proto::RecommendReq {
            req_id,
            direction: request.direction,
            user: request.user,
            k: request.k as u32,
        }))?;
        self.recv()
    }

    /// Sets/clears the receive timeout (a timed-out [`Client::recv`]
    /// surfaces as [`ClientError::Io`] with `WouldBlock`/`TimedOut`).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// A second handle on the same connection for split send/receive
    /// threads (the open-loop load generator's shape).
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

/// Builds the deterministic preset engine both `cdrib-served --preset` and
/// the load generator's reference side use: same scenario seed, same model
/// init seed, same construction path — so a server booted in another
/// process serves **bitwise** the lists the generator computes locally,
/// which is what makes the cross-process parity gate meaningful.
pub fn preset_engine(scale: &str, seed: u64) -> crate::error::Result<(Recommender, cdrib_data::CdrScenario)> {
    use cdrib_core::{CdribConfig, CdribModel, InferenceModel};
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    let scale = match scale {
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => Scale::Tiny,
    };
    let scenario = build_preset(ScenarioKind::GameVideo, scale, seed).map_err(|e| ServeError::Update {
        detail: format!("preset scenario failed: {e}"),
    })?;
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).map_err(|e| ServeError::Update {
        detail: format!("preset model init failed: {e}"),
    })?;
    let rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario)?;
    Ok((rec, scenario))
}
