//! The leave-one-out cold-start evaluation protocol (§IV-B1).
//!
//! For every held-out ground-truth interaction `(u, v)` in the target domain
//! we sample 999 items the user never interacted with, score the 1000
//! candidates with the model under test, and record the rank of the
//! positive. MRR / NDCG / HR are averaged over all cases.

use crate::metrics::{rank_of_positive, MetricsAccumulator, RankingMetrics};
use cdrib_data::{CdrScenario, DataError, Direction, EvalCase, NegativeSampler, Result};
use cdrib_tensor::rng::component_rng;
use serde::{Deserialize, Serialize};

/// Which held-out split to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalSplit {
    /// The validation users (used for model selection / early stopping).
    Validation,
    /// The test users (reported in the tables).
    Test,
}

/// Configuration of the ranking protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Number of sampled negative items per case (paper: 999).
    pub n_negatives: usize,
    /// Seed of the negative sampler (kept fixed across methods so every
    /// model ranks against the same candidate lists).
    pub seed: u64,
    /// Optional cap on the number of evaluated cases (useful for quick
    /// sweeps); `None` evaluates every case.
    pub max_cases: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            n_negatives: 999,
            seed: 7,
            max_cases: None,
        }
    }
}

/// A model that can score target-domain items for cold-start users.
///
/// `user` is an index in the shared overlap prefix (the user exists in both
/// domains); `items` are item indices of the *target* domain of `direction`.
/// Implementations produce one score per item, higher = more relevant.
///
/// The required method is the bulk [`ColdStartScorer::score_into`], which
/// writes into caller-provided storage so the protocol can score whole
/// candidate blocks through pooled buffers (and, behind the `parallel`
/// feature, across threads — hence the `Sync` bound).
pub trait ColdStartScorer: Sync {
    /// Scores the candidate items for the cold-start user into `out`
    /// (`out.len() == items.len()`).
    fn score_into(&self, direction: Direction, user: u32, items: &[u32], out: &mut [f32]);

    /// Allocating convenience wrapper around [`ColdStartScorer::score_into`].
    fn score_items(&self, direction: Direction, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0; items.len()];
        self.score_into(direction, user, items, &mut out);
        out
    }
}

impl<F> ColdStartScorer for F
where
    F: Fn(Direction, u32, &[u32]) -> Vec<f32> + Sync,
{
    fn score_into(&self, direction: Direction, user: u32, items: &[u32], out: &mut [f32]) {
        let scores = self(direction, user, items);
        debug_assert_eq!(scores.len(), out.len());
        out.copy_from_slice(&scores);
    }

    fn score_items(&self, direction: Direction, user: u32, items: &[u32]) -> Vec<f32> {
        self(direction, user, items)
    }
}

/// The outcome of one evaluation case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The evaluated cold-start user.
    pub user: u32,
    /// The ground-truth item.
    pub item: u32,
    /// 1-based rank of the ground-truth item among the candidates.
    pub rank: usize,
}

/// Aggregated outcome of an evaluation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// The evaluated direction.
    pub direction: Direction,
    /// Averaged metrics over all cases.
    pub metrics: RankingMetrics,
    /// Per-case results (used by the Table IX grouping analysis).
    pub cases: Vec<CaseResult>,
}

impl EvalOutcome {
    /// Number of evaluated cases.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }
}

fn cases_of(scenario: &CdrScenario, direction: Direction, split: EvalSplit) -> &[EvalCase] {
    let set = scenario.cold_start(direction);
    match split {
        EvalSplit::Validation => &set.validation,
        EvalSplit::Test => &set.test,
    }
}

/// Number of evaluation cases whose candidate lists are sampled into the
/// pooled block buffers before one bulk scoring pass. At the paper's 999
/// negatives a block holds ~128k candidate ids / scores (~1 MB), enough to
/// keep every scoring thread busy while staying cache-friendly.
const BLOCK_CASES: usize = 128;

/// Minimum number of scores in a block before the threaded driver engages;
/// below this the thread-spawn overhead dominates the scoring work.
#[cfg(feature = "parallel")]
const PAR_MIN_SCORES: usize = 1 << 13;

/// Scores one block of cases. Candidate lists live back-to-back in
/// `candidates` with case `ci` spanning `offsets[ci]..offsets[ci + 1]`;
/// scores land at the same positions in `scores`. Behind the `parallel`
/// feature the cases are chunked over `std::thread::scope` threads (score
/// ranges are disjoint, so no synchronisation is needed); results are
/// identical to the serial path because per-case scoring is independent.
fn score_block<S: ColdStartScorer + ?Sized>(
    scorer: &S,
    direction: Direction,
    cases: &[EvalCase],
    offsets: &[usize],
    candidates: &[u32],
    scores: &mut [f32],
) {
    debug_assert_eq!(offsets.len(), cases.len() + 1);
    debug_assert_eq!(scores.len(), candidates.len());
    #[cfg(feature = "parallel")]
    {
        let threads = cdrib_tensor::kernels::parallelism().min(cases.len());
        if threads > 1 && scores.len() >= PAR_MIN_SCORES {
            let per_thread = cases.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let mut rest = scores;
                let mut c0 = 0usize;
                while c0 < cases.len() {
                    let c1 = (c0 + per_thread).min(cases.len());
                    let (chunk, tail) = rest.split_at_mut(offsets[c1] - offsets[c0]);
                    rest = tail;
                    scope.spawn(move || {
                        let base = offsets[c0];
                        for ci in c0..c1 {
                            scorer.score_into(
                                direction,
                                cases[ci].user,
                                &candidates[offsets[ci]..offsets[ci + 1]],
                                &mut chunk[offsets[ci] - base..offsets[ci + 1] - base],
                            );
                        }
                    });
                    c0 = c1;
                }
            });
            return;
        }
    }
    for (ci, case) in cases.iter().enumerate() {
        scorer.score_into(
            direction,
            case.user,
            &candidates[offsets[ci]..offsets[ci + 1]],
            &mut scores[offsets[ci]..offsets[ci + 1]],
        );
    }
}

/// Runs the ranking protocol for one direction and split.
///
/// Candidate lists are pre-sampled per block into pooled buffers (negative
/// sampling stays sequential in case order, so candidate lists are
/// reproducible regardless of thread count), each block is scored in one
/// bulk [`ColdStartScorer::score_into`] pass, and ranks are reduced from the
/// block's score buffer. A non-finite score for a ground-truth item aborts
/// the run with [`DataError::NonFiniteScore`]; NaN negatives are counted
/// above the positive by [`rank_of_positive`].
pub fn evaluate_cold_start<S: ColdStartScorer + ?Sized>(
    scorer: &S,
    scenario: &CdrScenario,
    direction: Direction,
    split: EvalSplit,
    config: &EvalConfig,
) -> Result<EvalOutcome> {
    let cases = cases_of(scenario, direction, split);
    if cases.is_empty() {
        return Err(DataError::EmptyDataset {
            stage: "evaluation cases",
        });
    }
    let target = scenario.domain(direction.target);
    let n_items = target.n_items;
    if n_items <= config.n_negatives {
        return Err(DataError::InvalidConfig {
            field: "n_negatives",
            detail: format!(
                "cannot sample {} negatives from a catalogue of {} items",
                config.n_negatives, n_items
            ),
        });
    }
    // Negatives are sampled against the *full* graph so other held-out
    // positives are never used as negatives; dense users fall back to
    // exhaustive enumeration inside the shared sampler.
    let sampler = NegativeSampler::with_items(n_items);
    let mut rng = component_rng(config.seed, "eval-negatives");
    let n_eval = cases.len().min(config.max_cases.unwrap_or(usize::MAX));
    let mut acc = MetricsAccumulator::new();
    let mut results = Vec::with_capacity(n_eval);
    // Pooled block buffers, reused across blocks.
    let mut candidates: Vec<u32> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut scores: Vec<f32> = Vec::new();

    for chunk in cases[..n_eval].chunks(BLOCK_CASES) {
        candidates.clear();
        offsets.clear();
        offsets.push(0);
        for case in chunk {
            candidates.push(case.item);
            sampler.sample_up_to(
                &target.full,
                case.user as usize,
                config.n_negatives,
                Some(case.item),
                &mut rng,
                &mut candidates,
            );
            offsets.push(candidates.len());
        }
        if scores.len() < candidates.len() {
            scores.resize(candidates.len(), 0.0);
        }
        let block_scores = &mut scores[..candidates.len()];
        score_block(scorer, direction, chunk, &offsets, &candidates, block_scores);
        for (ci, case) in chunk.iter().enumerate() {
            let case_scores = &block_scores[offsets[ci]..offsets[ci + 1]];
            // Any non-finite ground-truth score is a divergence signal: an
            // overflowing model typically hits +inf before NaN, and an
            // infinite positive would otherwise rank #1 and report perfect
            // metrics.
            if !case_scores[0].is_finite() {
                return Err(DataError::NonFiniteScore {
                    user: case.user,
                    item: case.item,
                });
            }
            let rank = rank_of_positive(case_scores[0], &case_scores[1..]);
            acc.push_rank(rank);
            results.push(CaseResult {
                user: case.user,
                item: case.item,
                rank,
            });
        }
    }

    Ok(EvalOutcome {
        direction,
        metrics: acc.mean().expect("at least one case was evaluated"),
        cases: results,
    })
}

/// Convenience: evaluates both directions and returns `(X -> Y, Y -> X)`.
pub fn evaluate_both_directions<S: ColdStartScorer + ?Sized>(
    scorer: &S,
    scenario: &CdrScenario,
    split: EvalSplit,
    config: &EvalConfig,
) -> Result<(EvalOutcome, EvalOutcome)> {
    let x2y = evaluate_cold_start(scorer, scenario, Direction::X_TO_Y, split, config)?;
    let y2x = evaluate_cold_start(scorer, scenario, Direction::Y_TO_X, split, config)?;
    Ok((x2y, y2x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_data::{build_preset, Scale, ScenarioKind};

    fn tiny_scenario() -> CdrScenario {
        build_preset(ScenarioKind::GameVideo, Scale::Tiny, 11).unwrap()
    }

    #[test]
    fn random_scorer_is_near_chance() {
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 1,
            max_cases: None,
        };
        // A scorer that ignores the user: pseudo-random but deterministic per item.
        let scorer = |_d: Direction, _u: u32, items: &[u32]| -> Vec<f32> {
            items.iter().map(|&i| (i as f32 * 37.13).sin()).collect()
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        // Chance MRR with 51 candidates is ~ H(51)/51 ≈ 0.089.
        assert!(out.metrics.mrr < 0.2, "random scorer MRR {}", out.metrics.mrr);
        assert!(out.metrics.hr10 < 0.45);
        assert_eq!(out.n_cases(), scenario.cold_x_to_y.test.len());
    }

    #[test]
    fn oracle_scorer_is_perfect() {
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 2,
            max_cases: Some(200),
        };
        // An oracle that peeks at the full target graph.
        let full_y = scenario.y.full.clone();
        let full_x = scenario.x.full.clone();
        let scorer = move |d: Direction, u: u32, items: &[u32]| -> Vec<f32> {
            let g = if d.target == cdrib_data::DomainId::Y {
                &full_y
            } else {
                &full_x
            };
            items
                .iter()
                .map(|&i| if g.has_edge(u as usize, i as usize) { 1.0 } else { 0.0 })
                .collect()
        };
        let (x2y, y2x) = evaluate_both_directions(&scorer, &scenario, EvalSplit::Test, &cfg).unwrap();
        assert!(x2y.metrics.mrr > 0.95, "oracle MRR {}", x2y.metrics.mrr);
        assert!(y2x.metrics.hr1 > 0.9);
        assert!(x2y.metrics.is_normalized());
    }

    #[test]
    fn negatives_are_reproducible_across_methods() {
        // Two different scorers must see identical candidate lists (same seed),
        // so a constant scorer always produces the same mean rank.
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 50,
            seed: 5,
            max_cases: Some(50),
        };
        let const_scorer = |_d: Direction, _u: u32, items: &[u32]| vec![0.0; items.len()];
        let a = evaluate_cold_start(&const_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Validation, &cfg).unwrap();
        let b = evaluate_cold_start(&const_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Validation, &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
        // With all-equal scores every case lands at rank 1 + 50/2 = 26.
        assert!((a.metrics.mrr - 1.0 / 26.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_users_fall_back_to_exhaustive_negatives() {
        // When a user has interacted with almost the whole catalogue, fewer
        // than `n_negatives` candidates exist; the protocol must terminate
        // and rank against every remaining item instead of looping forever.
        let scenario = tiny_scenario();
        let n_items = scenario.y.n_items;
        let cfg = EvalConfig {
            n_negatives: n_items - 1, // more than any user has available
            seed: 9,
            max_cases: Some(20),
        };
        let scorer = |_d: Direction, _u: u32, items: &[u32]| vec![0.5; items.len()];
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        assert!(out.n_cases() > 0);
        for case in &out.cases {
            assert!(case.rank <= n_items);
        }
    }

    #[test]
    fn nan_positive_scores_are_a_protocol_error() {
        // Regression: a diverging model whose scores go NaN used to rank its
        // positive at #1 (every `NaN > NaN` compare is false) and report
        // MRR = 1. The protocol must refuse to produce metrics instead.
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 30,
            seed: 4,
            max_cases: Some(20),
        };
        let nan_scorer = |_d: Direction, _u: u32, items: &[u32]| vec![f32::NAN; items.len()];
        let err = evaluate_cold_start(&nan_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg);
        assert!(
            matches!(err, Err(cdrib_data::DataError::NonFiniteScore { .. })),
            "{err:?}"
        );
        // Overflow usually hits +inf before NaN; an infinite positive would
        // rank #1 with finite negatives, so it must error just the same.
        let inf_scorer = |_d: Direction, _u: u32, items: &[u32]| -> Vec<f32> {
            let mut s = vec![0.0; items.len()];
            s[0] = f32::INFINITY;
            s
        };
        let err = evaluate_cold_start(&inf_scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg);
        assert!(
            matches!(err, Err(cdrib_data::DataError::NonFiniteScore { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn nan_negatives_rank_above_the_positive() {
        // A scorer with a finite positive but NaN negatives must report
        // worst-case metrics, never MRR ~ 1. The positive is always
        // candidate 0 of each case's list.
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 30,
            seed: 4,
            max_cases: Some(20),
        };
        let scorer = |_d: Direction, _u: u32, items: &[u32]| -> Vec<f32> {
            let mut s = vec![f32::NAN; items.len()];
            s[0] = 1.0;
            s
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        assert!(
            out.metrics.mrr < 0.1,
            "NaN negatives must push the positive to the bottom: MRR {}",
            out.metrics.mrr
        );
        assert_eq!(out.metrics.hr10, 0.0);
        for case in &out.cases {
            assert_eq!(case.rank, 31, "all 30 NaN negatives must rank above");
        }
    }

    #[test]
    fn batched_blocks_match_per_case_scoring() {
        // The block pipeline (pooled buffers + bulk score_into, possibly
        // threaded) must produce exactly the metrics of naive per-case
        // scoring. The closure scorer exercises the default score_into
        // adapter; more cases than BLOCK_CASES forces multiple blocks.
        let scenario = tiny_scenario();
        let cfg = EvalConfig {
            n_negatives: 40,
            seed: 11,
            max_cases: None,
        };
        let scorer = |_d: Direction, u: u32, items: &[u32]| -> Vec<f32> {
            items
                .iter()
                .map(|&i| ((i as f32 * 12.9898 + u as f32 * 78.233).sin() * 43758.547).fract())
                .collect()
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg).unwrap();
        // Reference: same candidates (same seed), one case at a time.
        let mut acc = MetricsAccumulator::new();
        let sampler = NegativeSampler::with_items(scenario.y.n_items);
        let mut rng = component_rng(cfg.seed, "eval-negatives");
        for case in &scenario.cold_x_to_y.test {
            let mut candidates = vec![case.item];
            sampler.sample_up_to(
                &scenario.y.full,
                case.user as usize,
                cfg.n_negatives,
                Some(case.item),
                &mut rng,
                &mut candidates,
            );
            let scores = scorer(Direction::X_TO_Y, case.user, &candidates);
            acc.push_rank(rank_of_positive(scores[0], &scores[1..]));
        }
        let reference = acc.mean().unwrap();
        assert_eq!(out.metrics, reference);
    }

    #[test]
    fn max_cases_and_config_validation() {
        let scenario = tiny_scenario();
        let scorer = |_d: Direction, _u: u32, items: &[u32]| vec![1.0; items.len()];
        let cfg = EvalConfig {
            n_negatives: 20,
            seed: 0,
            max_cases: Some(3),
        };
        let out = evaluate_cold_start(&scorer, &scenario, Direction::Y_TO_X, EvalSplit::Test, &cfg).unwrap();
        assert_eq!(out.n_cases(), 3);
        // Asking for more negatives than the catalogue has must fail.
        let bad = EvalConfig {
            n_negatives: 10_000_000,
            seed: 0,
            max_cases: None,
        };
        assert!(evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &bad).is_err());
    }
}
