//! # cdrib-baselines
//!
//! Every comparison method of the CDRIB paper's evaluation (Tables III-VI),
//! implemented from scratch on the same tensor / graph substrate as CDRIB
//! itself:
//!
//! * single-domain CF on the merged graph — CML, BPRMF, NGCF(-style GCN) and
//!   the single-domain VBGE/VGAE;
//! * shared-parameter cross-domain models — CoNet, STAR, PPGN (simplified
//!   bilinear / joint-graph forms, see DESIGN.md);
//! * the embedding-and-mapping family — EMCDR(CML/BPRMF/NGCF), SSCDR, TMCDR
//!   and SA-VAE.
//!
//! All methods expose the same interface: [`Method::train`] returns an
//! [`EmbeddingScorer`](cdrib_eval::EmbeddingScorer) that plugs into the
//! shared leave-one-out evaluation protocol.

#![warn(missing_docs)]

pub mod common;
pub mod emcdr;
pub mod gcn;
pub mod mf;
pub mod neural;
pub mod registry;
pub mod vgae;

pub use common::{BaselineOpts, MergedGraph};
pub use emcdr::{train_emcdr, EmcdrConfig, Pretrainer};
pub use gcn::train_gcn;
pub use mf::{train_bprmf, train_cml, MfModel};
pub use neural::{train_conet, train_star};
pub use registry::{split_merged, Method};
pub use vgae::train_vgae;
