//! Error type of the CDRIB model crate.

use std::fmt;

/// Errors produced while building, training or applying CDRIB.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An invalid hyperparameter configuration.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human readable detail.
        detail: String,
    },
    /// The scenario cannot be used (e.g. no training overlap users).
    InvalidScenario {
        /// Human readable detail.
        detail: String,
    },
    /// Training diverged (non-finite loss or parameters).
    Diverged {
        /// The epoch at which divergence was detected.
        epoch: usize,
    },
    /// An online graph delta cannot be applied to the frozen model (counts
    /// out of step with the post-delta graph, or incremental caches not
    /// enabled).
    InvalidDelta {
        /// Human readable detail.
        detail: String,
    },
    /// An underlying tensor error.
    Tensor(cdrib_tensor::TensorError),
    /// An underlying data error.
    Data(cdrib_data::DataError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, detail } => {
                write!(f, "invalid CDRIB configuration for `{field}`: {detail}")
            }
            CoreError::InvalidScenario { detail } => write!(f, "invalid scenario: {detail}"),
            CoreError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
            CoreError::InvalidDelta { detail } => write!(f, "invalid online delta: {detail}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdrib_tensor::TensorError> for CoreError {
    fn from(e: cdrib_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<cdrib_data::DataError> for CoreError {
    fn from(e: cdrib_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::InvalidConfig {
            field: "dim",
            detail: "zero".into()
        }
        .to_string()
        .contains("dim"));
        assert!(CoreError::InvalidScenario { detail: "empty".into() }
            .to_string()
            .contains("empty"));
        assert!(CoreError::Diverged { epoch: 3 }.to_string().contains("3"));
        let t: CoreError = cdrib_tensor::TensorError::NoGradient.into();
        assert!(t.to_string().contains("tensor"));
        let d: CoreError = cdrib_data::DataError::EmptyDataset { stage: "x" }.into();
        assert!(d.to_string().contains("data"));
        use std::error::Error;
        assert!(t.source().is_some());
        assert!(CoreError::Diverged { epoch: 1 }.source().is_none());
    }
}
