//! Generic embedding-based scorers.
//!
//! Almost every method in the paper ultimately ranks items by an inner
//! product (or a negative distance) between a user vector and item vectors.
//! [`EmbeddingScorer`] wraps the four embedding tables of a bi-directional
//! CDR model — users and items of both domains — and implements
//! [`ColdStartScorer`] so the evaluation protocol can be shared by CDRIB and
//! all baselines.

use crate::protocol::ColdStartScorer;
use cdrib_data::{Direction, DomainId};
use cdrib_tensor::{kernels, Tensor};
use serde::{Deserialize, Serialize};

/// How a user vector and an item vector are combined into a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreKind {
    /// Inner product (BPRMF, NGCF, CDRIB, ...).
    Dot,
    /// Negative squared Euclidean distance (CML-style metric learning).
    NegativeDistance,
}

/// Embedding tables of both domains with a pluggable score function.
///
/// For a cold-start user evaluated in direction `source -> target`, the user
/// vector is taken from the *source* user table (that is where the user has
/// observed interactions) and item vectors from the *target* item table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingScorer {
    /// User embeddings of domain X (`|U^X| x F`).
    pub x_users: Tensor,
    /// Item embeddings of domain X (`|V^X| x F`).
    pub x_items: Tensor,
    /// User embeddings of domain Y (`|U^Y| x F`).
    pub y_users: Tensor,
    /// Item embeddings of domain Y (`|V^Y| x F`).
    pub y_items: Tensor,
    /// The score function.
    pub kind: ScoreKind,
}

impl EmbeddingScorer {
    /// Creates a dot-product scorer.
    pub fn dot(x_users: Tensor, x_items: Tensor, y_users: Tensor, y_items: Tensor) -> Self {
        EmbeddingScorer {
            x_users,
            x_items,
            y_users,
            y_items,
            kind: ScoreKind::Dot,
        }
    }

    /// Creates a negative-distance scorer (metric learning).
    pub fn negative_distance(x_users: Tensor, x_items: Tensor, y_users: Tensor, y_items: Tensor) -> Self {
        EmbeddingScorer {
            x_users,
            x_items,
            y_users,
            y_items,
            kind: ScoreKind::NegativeDistance,
        }
    }

    fn user_table(&self, domain: DomainId) -> &Tensor {
        match domain {
            DomainId::X => &self.x_users,
            DomainId::Y => &self.y_users,
        }
    }

    fn item_table(&self, domain: DomainId) -> &Tensor {
        match domain {
            DomainId::X => &self.x_items,
            DomainId::Y => &self.y_items,
        }
    }

    /// Scores a single `(user_vector, item_vector)` pair with a plain scalar
    /// loop. This is the reference implementation the batched
    /// [`EmbeddingScorer::score_cross_into`] path is parity-tested against
    /// (`tests/score_parity.rs`); production scoring goes through the SIMD
    /// kernels instead.
    pub fn pair_score(&self, user: &[f32], item: &[f32]) -> f32 {
        match self.kind {
            ScoreKind::Dot => user.iter().zip(item.iter()).map(|(a, b)| a * b).sum(),
            ScoreKind::NegativeDistance => -user
                .iter()
                .zip(item.iter())
                .map(|(a, b)| {
                    let d = a - b;
                    d * d
                })
                .sum::<f32>(),
        }
    }

    /// Scores `items` of `item_domain` for the user row taken from
    /// `user_domain`. Exposed for baselines that need in-domain scoring too.
    ///
    /// Allocating convenience wrapper: hot paths hold a reusable buffer and
    /// call [`EmbeddingScorer::score_cross_into`] instead.
    pub fn score_cross(&self, user_domain: DomainId, user: u32, item_domain: DomainId, items: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0; items.len()];
        self.score_cross_into(user_domain, user, item_domain, items, &mut out);
        out
    }

    /// Scalar reference scoring of a full candidate list for a transfer
    /// direction: the pre-batching path (a per-pair
    /// [`EmbeddingScorer::pair_score`] loop), kept as the single definition
    /// of the baseline that benches and parity suites compare the
    /// kernel-backed [`ColdStartScorer::score_into`] route against.
    ///
    /// Allocating convenience wrapper around
    /// [`EmbeddingScorer::score_items_scalar_into`].
    pub fn score_items_scalar(&self, direction: Direction, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0; items.len()];
        self.score_items_scalar_into(direction, user, items, &mut out);
        out
    }

    /// Buffer-reusing variant of [`EmbeddingScorer::score_items_scalar`]:
    /// the same per-pair scalar reference loop, writing into caller-provided
    /// storage so repeated reference scoring (parity suites, the `step_perf`
    /// scalar baseline) stays off the allocator.
    pub fn score_items_scalar_into(&self, direction: Direction, user: u32, items: &[u32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), items.len());
        let users = self.user_table(direction.source);
        let table = self.item_table(direction.target);
        let u = users.row(user as usize);
        for (o, &i) in out.iter_mut().zip(items.iter()) {
            *o = self.pair_score(u, table.row(i as usize));
        }
    }

    /// Bulk variant of [`EmbeddingScorer::score_cross`]: scores every
    /// candidate in one fused SIMD kernel pass (`score_candidates_dot` /
    /// `score_candidates_neg_sq_dist`) without allocating.
    pub fn score_cross_into(
        &self,
        user_domain: DomainId,
        user: u32,
        item_domain: DomainId,
        items: &[u32],
        out: &mut [f32],
    ) {
        let users = self.user_table(user_domain);
        let table = self.item_table(item_domain);
        let u = users.row(user as usize);
        match self.kind {
            ScoreKind::Dot => kernels::score_candidates_dot(table.cols(), u, table.as_slice(), items, out),
            ScoreKind::NegativeDistance => {
                kernels::score_candidates_neg_sq_dist(table.cols(), u, table.as_slice(), items, out)
            }
        }
    }
}

impl ColdStartScorer for EmbeddingScorer {
    fn score_into(&self, direction: Direction, user: u32, items: &[u32], out: &mut [f32]) {
        self.score_cross_into(direction.source, user, direction.target, items, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn dot_scorer_uses_source_users_and_target_items() {
        let scorer = EmbeddingScorer::dot(
            t(2, 2, &[1.0, 0.0, 0.0, 1.0]),            // X users
            t(2, 2, &[9.0, 9.0, 9.0, 9.0]),            // X items (should not be used for X->Y)
            t(2, 2, &[5.0, 5.0, 5.0, 5.0]),            // Y users (should not be used for X->Y)
            t(3, 2, &[1.0, 2.0, 3.0, 4.0, 0.5, 0.25]), // Y items
        );
        let s = scorer.score_items(Direction::X_TO_Y, 0, &[0, 1, 2]);
        assert_eq!(s, vec![1.0, 3.0, 0.5]);
        let s2 = scorer.score_items(Direction::X_TO_Y, 1, &[0, 1, 2]);
        assert_eq!(s2, vec![2.0, 4.0, 0.25]);
        // Y -> X uses Y users and X items.
        let s3 = scorer.score_items(Direction::Y_TO_X, 0, &[1]);
        assert_eq!(s3, vec![90.0]);
    }

    #[test]
    fn negative_distance_ranks_closest_first() {
        let scorer = EmbeddingScorer::negative_distance(
            t(1, 2, &[0.0, 0.0]),
            t(2, 2, &[0.1, 0.1, 5.0, 5.0]),
            t(1, 2, &[0.0, 0.0]),
            t(2, 2, &[1.0, 1.0, 0.2, 0.2]),
        );
        let s = scorer.score_items(Direction::X_TO_Y, 0, &[0, 1]);
        assert!(s[1] > s[0], "closer item must score higher: {s:?}");
        let s2 = scorer.score_items(Direction::Y_TO_X, 0, &[0, 1]);
        assert!(s2[0] > s2[1]);
    }

    #[test]
    fn score_cross_supports_in_domain_scoring() {
        let scorer = EmbeddingScorer::dot(t(1, 1, &[2.0]), t(2, 1, &[3.0, -1.0]), t(1, 1, &[4.0]), t(1, 1, &[1.0]));
        assert_eq!(
            scorer.score_cross(DomainId::X, 0, DomainId::X, &[0, 1]),
            vec![6.0, -2.0]
        );
        assert_eq!(scorer.score_cross(DomainId::Y, 0, DomainId::Y, &[0]), vec![4.0]);
    }
}
