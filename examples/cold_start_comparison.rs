//! Cold-start comparison on the Music-Movie scenario: CDRIB against a
//! single-domain baseline (BPRMF on the merged graph) and an EMCDR-style
//! mapping baseline — the three families the paper's introduction contrasts.
//!
//! Run with: `cargo run --release --example cold_start_comparison`

use cdrib::prelude::*;

fn evaluate(name: &str, scorer: &dyn cdrib::eval::ColdStartScorer, scenario: &CdrScenario, cfg: &EvalConfig) {
    let x2y = evaluate_cold_start(scorer, scenario, Direction::X_TO_Y, EvalSplit::Test, cfg).expect("eval");
    let y2x = evaluate_cold_start(scorer, scenario, Direction::Y_TO_X, EvalSplit::Test, cfg).expect("eval");
    println!(
        "  {:<16} Music->Movie: MRR {:5.2}%  HR@10 {:5.2}%   Movie->Music: MRR {:5.2}%  HR@10 {:5.2}%",
        name,
        x2y.metrics.mrr * 100.0,
        x2y.metrics.hr10 * 100.0,
        y2x.metrics.mrr * 100.0,
        y2x.metrics.hr10 * 100.0
    );
}

fn main() {
    let scenario = build_preset(ScenarioKind::MusicMovie, Scale::Tiny, 11).expect("scenario");
    println!(
        "Music-Movie scenario: {} / {} users, {} overlapping training users\n",
        scenario.x.n_users,
        scenario.y.n_users,
        scenario.n_train_overlap()
    );
    let eval_cfg = EvalConfig {
        n_negatives: cdrib::core::validation_negatives(&scenario),
        seed: 3,
        max_cases: Some(500),
    };
    let opts = BaselineOpts {
        dim: 32,
        epochs: 20,
        ..BaselineOpts::default()
    };

    println!("Single-domain CF (merged graph):");
    let bprmf = Method::Bprmf.train(&scenario, &opts).expect("bprmf");
    evaluate("BPRMF", &bprmf, &scenario, &eval_cfg);

    println!("\nEmbedding-and-mapping (EMCDR):");
    let emcdr = Method::EmcdrBprmf.train(&scenario, &opts).expect("emcdr");
    evaluate("EMCDR(BPRMF)", &emcdr, &scenario, &eval_cfg);

    println!("\nJoint variational information bottleneck (this paper):");
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        epochs: 80,
        eval_every: 20,
        ..CdribConfig::default()
    };
    let trained = train(&config, &scenario).expect("cdrib");
    let scorer = trained.scorer();
    evaluate("CDRIB", &scorer, &scenario, &eval_cfg);

    println!("\nExpected shape (paper, Tables III): CDRIB > EMCDR-family > single-domain CF for cold-start users.");
}
