//! Reverse-mode automatic differentiation.
//!
//! The [`Tape`] records every operation of a forward pass as a node holding
//! its output value and enough information to propagate gradients to its
//! parents. Calling [`Tape::backward`] walks the recorded nodes in reverse,
//! accumulates gradients, and finally writes parameter gradients into the
//! [`ParamSet`] that was used during the forward pass.
//!
//! The operation set is exactly what CDRIB and its baselines need: dense and
//! sparse matrix products, row gathering for embedding lookups, the LeakyReLU
//! / Softplus / sigmoid nonlinearities of the VBGE, Gaussian KL divergence
//! for the minimality terms, and binary cross-entropy for the reconstruction
//! and contrastive terms.
//!
//! ## Buffer pooling
//!
//! CDRIB re-records an identical graph every training step, so the tape owns
//! a [`BufferPool`] and draws every node value — and every gradient buffer of
//! the backward pass — from it. [`Tape::reset`] returns all storage to the
//! pool instead of freeing it, which makes a warm training step (hold one
//! tape per run, `reset` between steps) allocation-free: after the first
//! couple of steps every buffer request is served by recycled storage.
//! Gradients are accumulated in place through the fused kernels of
//! [`crate::kernels`]; no intermediate gradient tensors are materialised for
//! the hot backward chains.

use crate::error::{Result, TensorError};
use crate::func;
use crate::kernels;
use crate::params::{ParamId, ParamSet};
use crate::pool::{BufferPool, PoolStats};
use crate::sparse::CsrMatrix;
use crate::tensor::Tensor;
use std::sync::Arc;

pub use crate::kernels::{sigmoid_scalar, softplus_scalar};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    index: usize,
    generation: u64,
}

impl Var {
    /// Index of the node inside its tape (primarily for diagnostics).
    pub fn index(&self) -> usize {
        self.index
    }
}

/// The recorded operation of a tape node.
#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddRowBroadcast {
        matrix: usize,
        row: usize,
    },
    Scale {
        input: usize,
        factor: f32,
    },
    AddScalar {
        input: usize,
    },
    Matmul(usize, usize),
    Spmm {
        sparse: Arc<CsrMatrix>,
        dense: usize,
    },
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    GatherRows {
        input: usize,
        indices: Arc<Vec<usize>>,
    },
    GatherRowwiseDot {
        a: usize,
        b: usize,
        a_idx: Arc<Vec<usize>>,
        b_idx: Arc<Vec<usize>>,
    },
    LeakyRelu {
        input: usize,
        slope: f32,
    },
    Softplus {
        input: usize,
    },
    Sigmoid {
        input: usize,
    },
    Tanh {
        input: usize,
    },
    Exp {
        input: usize,
    },
    Log {
        input: usize,
    },
    SumAll {
        input: usize,
    },
    MeanAll {
        input: usize,
    },
    SumSquares {
        input: usize,
    },
    Dropout {
        input: usize,
        mask: Tensor,
    },
    RowwiseDot(usize, usize),
    RowwiseSqDist(usize, usize),
    KlStdNormal {
        mu: usize,
        sigma: usize,
    },
    BceWithLogits {
        logits: usize,
        targets: Tensor,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A single forward pass worth of recorded operations plus the recycled
/// storage that backs them.
#[derive(Debug)]
pub struct Tape {
    nodes: Vec<Node>,
    generation: u64,
    pool: BufferPool,
    /// Scratch slots of the backward pass, kept across calls so the
    /// `Vec<Option<Tensor>>` itself is allocated once per tape.
    grad_slots: Vec<Option<Tensor>>,
}

/// Small epsilon protecting logs and divisions in the KL term.
const EPS: f32 = 1e-8;

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            generation: 1,
            pool: BufferPool::new(),
            grad_slots: Vec::new(),
        }
    }

    /// Clears all recorded nodes so the tape can be reused for the next
    /// forward pass. The node list keeps its capacity and every node's
    /// storage (values, dropout masks, BCE targets) is returned to the
    /// tape's buffer pool for reuse. Outstanding [`Var`] handles become
    /// stale and are rejected by subsequent operations.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            match node.op {
                Op::Dropout { mask, .. } => self.pool.put(mask),
                Op::BceWithLogits { targets, .. } => self.pool.put(targets),
                _ => {}
            }
            self.pool.put(node.value);
        }
        self.generation += 1;
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Hit/miss counters of the tape's buffer pool (diagnostics and the
    /// allocation-regression tests).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Takes a `rows x cols` buffer from the tape's pool. The contents are
    /// **unspecified**; callers must overwrite every element. Intended for
    /// caller-built tensors that end up on the tape anyway (dropout masks,
    /// reparameterisation noise, label columns) so their storage joins the
    /// recycling cycle. Buffers that do not get recorded can be handed back
    /// with [`Tape::recycle`].
    pub fn scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        self.pool.take_uninit(rows, cols)
    }

    /// Returns a tensor's storage to the tape's pool without recording it.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.pool.put(tensor);
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var {
            index: self.nodes.len() - 1,
            generation: self.generation,
        }
    }

    fn check(&self, v: Var) -> Result<usize> {
        if v.generation != self.generation {
            return Err(TensorError::StaleVariable {
                var_generation: v.generation,
                tape_generation: self.generation,
            });
        }
        if v.index >= self.nodes.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: v.index,
                bound: self.nodes.len(),
            });
        }
        Ok(v.index)
    }

    fn val(&self, idx: usize) -> &Tensor {
        &self.nodes[idx].value
    }

    fn rg(&self, idx: usize) -> bool {
        self.nodes[idx].requires_grad
    }

    /// Shape of `ia`, after checking both operands have the same shape.
    fn same_shape(&self, op: &'static str, ia: usize, ib: usize) -> Result<(usize, usize)> {
        let (sa, sb) = (self.val(ia).shape(), self.val(ib).shape());
        if sa != sb {
            return Err(TensorError::ShapeMismatch { op, lhs: sa, rhs: sb });
        }
        Ok(sa)
    }

    /// Pooled `1 x 1` tensor holding `value`.
    fn pooled_scalar(&mut self, value: f32) -> Tensor {
        let mut t = self.pool.take_uninit(1, 1);
        t.as_mut_slice()[0] = value;
        t
    }

    /// The value currently held by a node.
    pub fn value(&self, v: Var) -> Result<&Tensor> {
        let idx = self.check(v)?;
        Ok(self.val(idx))
    }

    /// Records a constant (non-differentiable) tensor, taking ownership.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Records a constant by copying it into pooled storage (the
    /// allocation-free alternative to `constant(value.clone())`).
    pub fn constant_copy(&mut self, value: &Tensor) -> Var {
        let (r, c) = value.shape();
        let mut copied = self.pool.take_uninit(r, c);
        copied.copy_from(value);
        self.push(copied, Op::Constant, false)
    }

    /// Records a trainable parameter leaf. The parameter value is copied onto
    /// the tape (into pooled storage) so later in-place updates do not
    /// invalidate the recording.
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        let (r, c) = params.value(id).shape();
        let mut value = self.pool.take_uninit(r, c);
        value.copy_from(params.value(id));
        self.push(value, Op::Param(id), true)
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (r, c) = self.same_shape("add", ia, ib)?;
        let mut out = self.pool.take_uninit(r, c);
        kernels::zip(
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            out.as_mut_slice(),
            |x, y| x + y,
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::Add(ia, ib), rg))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (r, c) = self.same_shape("sub", ia, ib)?;
        let mut out = self.pool.take_uninit(r, c);
        kernels::zip(
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            out.as_mut_slice(),
            |x, y| x - y,
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::Sub(ia, ib), rg))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (r, c) = self.same_shape("mul", ia, ib)?;
        let mut out = self.pool.take_uninit(r, c);
        kernels::zip(
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            out.as_mut_slice(),
            |x, y| x * y,
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::Mul(ia, ib), rg))
    }

    /// Adds a `1 x cols` bias row to every row of `matrix`.
    pub fn add_row_broadcast(&mut self, matrix: Var, row: Var) -> Result<Var> {
        let (im, ir) = (self.check(matrix)?, self.check(row)?);
        let (rows, cols) = self.val(im).shape();
        let mut out = self.pool.take_uninit(rows, cols);
        if let Err(e) = func::add_row_broadcast_into(self.val(im), self.val(ir), &mut out) {
            self.pool.put(out);
            return Err(e);
        }
        let rg = self.rg(im) || self.rg(ir);
        Ok(self.push(out, Op::AddRowBroadcast { matrix: im, row: ir }, rg))
    }

    /// Multiplies every element by a constant factor.
    pub fn scale(&mut self, a: Var, factor: f32) -> Result<Var> {
        let ia = self.check(a)?;
        let (r, c) = self.val(ia).shape();
        let mut out = self.pool.take_uninit(r, c);
        kernels::map(self.val(ia).as_slice(), out.as_mut_slice(), |v| v * factor);
        let rg = self.rg(ia);
        Ok(self.push(out, Op::Scale { input: ia, factor }, rg))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, value: f32) -> Result<Var> {
        let ia = self.check(a)?;
        let (r, c) = self.val(ia).shape();
        let mut out = self.pool.take_uninit(r, c);
        kernels::map(self.val(ia).as_slice(), out.as_mut_slice(), |v| v + value);
        let rg = self.rg(ia);
        Ok(self.push(out, Op::AddScalar { input: ia }, rg))
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (m, _) = self.val(ia).shape();
        let (_, n) = self.val(ib).shape();
        let mut out = self.pool.take_uninit(m, n);
        if let Err(e) = func::matmul_into(self.val(ia), self.val(ib), &mut out) {
            self.pool.put(out);
            return Err(e);
        }
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::Matmul(ia, ib), rg))
    }

    /// Sparse-dense matrix product with a constant sparse operand.
    pub fn spmm(&mut self, sparse: &Arc<CsrMatrix>, dense: Var) -> Result<Var> {
        let id = self.check(dense)?;
        let n = self.val(id).cols();
        let mut out = self.pool.take_uninit(sparse.rows(), n);
        if let Err(e) = func::spmm_into(sparse, self.val(id), &mut out) {
            self.pool.put(out);
            return Err(e);
        }
        let rg = self.rg(id);
        Ok(self.push(
            out,
            Op::Spmm {
                sparse: Arc::clone(sparse),
                dense: id,
            },
            rg,
        ))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (rows, ca) = self.val(ia).shape();
        let cb = self.val(ib).cols();
        let mut out = self.pool.take_uninit(rows, ca + cb);
        if let Err(e) = func::concat_cols_into(self.val(ia), self.val(ib), &mut out) {
            self.pool.put(out);
            return Err(e);
        }
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::ConcatCols(ia, ib), rg))
    }

    /// Vertical concatenation (stacking `b` below `a`).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (ra, cols) = self.val(ia).shape();
        let (rb, cb) = self.val(ib).shape();
        if cols != cb {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: (ra, cols),
                rhs: (rb, cb),
            });
        }
        let mut out = self.pool.take_uninit(ra + rb, cols);
        {
            let split = ra * cols;
            out.as_mut_slice()[..split].copy_from_slice(self.val(ia).as_slice());
            out.as_mut_slice()[split..].copy_from_slice(self.val(ib).as_slice());
        }
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::ConcatRows(ia, ib), rg))
    }

    /// Gathers rows of `input` (embedding lookup / sub-batch selection).
    pub fn gather_rows(&mut self, input: Var, indices: &[usize]) -> Result<Var> {
        let shared = Arc::new(indices.to_vec());
        self.gather_rows_shared(input, &shared)
    }

    /// [`Tape::gather_rows`] with caller-owned shared indices: the tape keeps
    /// an `Arc` clone (a refcount bump) instead of copying the index list, so
    /// callers that reuse an index buffer across steps record gathers without
    /// allocating. The caller regains `Arc::get_mut` access after
    /// [`Tape::reset`] drops the tape's clone.
    pub fn gather_rows_shared(&mut self, input: Var, indices: &Arc<Vec<usize>>) -> Result<Var> {
        let ii = self.check(input)?;
        let (src_rows, cols) = self.val(ii).shape();
        for &i in indices.iter() {
            if i >= src_rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: src_rows,
                });
            }
        }
        let mut out = self.pool.take_uninit(indices.len(), cols);
        {
            let src = self.val(ii);
            for (k, &i) in indices.iter().enumerate() {
                out.row_mut(k).copy_from_slice(src.row(i));
            }
        }
        let rg = self.rg(ii);
        Ok(self.push(
            out,
            Op::GatherRows {
                input: ii,
                indices: Arc::clone(indices),
            },
            rg,
        ))
    }

    /// Fused sampled inner products `out[k] = <a[a_idx[k]], b[b_idx[k]]>`
    /// producing a `len x 1` column — `gather_rows` + `rowwise_dot` without
    /// materialising the gathered matrices (the scoring pattern of every
    /// sampled-interaction loss). The index lists must have equal length;
    /// the tape shares them by refcount like [`Tape::gather_rows_shared`].
    pub fn gather_rowwise_dot(
        &mut self,
        a: Var,
        b: Var,
        a_idx: &Arc<Vec<usize>>,
        b_idx: &Arc<Vec<usize>>,
    ) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        if a_idx.len() != b_idx.len() {
            return Err(TensorError::LengthMismatch {
                expected: a_idx.len(),
                got: b_idx.len(),
            });
        }
        let cols = self.val(ia).cols();
        if self.val(ib).cols() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "gather_rowwise_dot",
                lhs: self.val(ia).shape(),
                rhs: self.val(ib).shape(),
            });
        }
        for (&i, bound) in a_idx
            .iter()
            .map(|i| (i, self.val(ia).rows()))
            .chain(b_idx.iter().map(|i| (i, self.val(ib).rows())))
        {
            if i >= bound {
                return Err(TensorError::IndexOutOfBounds { index: i, bound });
            }
        }
        let mut out = self.pool.take_uninit(a_idx.len(), 1);
        kernels::gather_rowwise_dot(
            cols,
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            a_idx,
            b_idx,
            out.as_mut_slice(),
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(
            out,
            Op::GatherRowwiseDot {
                a: ia,
                b: ib,
                a_idx: Arc::clone(a_idx),
                b_idx: Arc::clone(b_idx),
            },
            rg,
        ))
    }

    /// LeakyReLU activation with the given negative slope.
    pub fn leaky_relu(&mut self, input: Var, slope: f32) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        func::leaky_relu_into(self.val(ii), slope, &mut out);
        let rg = self.rg(ii);
        Ok(self.push(out, Op::LeakyRelu { input: ii, slope }, rg))
    }

    /// Softplus activation `ln(1 + exp(x))`, computed stably.
    pub fn softplus(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        func::softplus_into(self.val(ii), &mut out);
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Softplus { input: ii }, rg))
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        func::sigmoid_into(self.val(ii), &mut out);
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Sigmoid { input: ii }, rg))
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        func::tanh_into(self.val(ii), &mut out);
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Tanh { input: ii }, rg))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        kernels::exp_forward(self.val(ii).as_slice(), out.as_mut_slice());
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Exp { input: ii }, rg))
    }

    /// Elementwise natural logarithm of `x + EPS` (inputs must be >= 0).
    pub fn log(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let (r, c) = self.val(ii).shape();
        let mut out = self.pool.take_uninit(r, c);
        kernels::ln_forward(EPS, self.val(ii).as_slice(), out.as_mut_slice());
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Log { input: ii }, rg))
    }

    /// Sum over every element, producing a `1 x 1` scalar node.
    pub fn sum(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let total = self.val(ii).sum();
        let value = self.pooled_scalar(total);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::SumAll { input: ii }, rg))
    }

    /// Mean over every element, producing a `1 x 1` scalar node.
    pub fn mean(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let mean = self.val(ii).mean()?;
        let value = self.pooled_scalar(mean);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::MeanAll { input: ii }, rg))
    }

    /// Sum of squared elements (used for explicit L2 regularisation).
    pub fn sum_squares(&mut self, input: Var) -> Result<Var> {
        let ii = self.check(input)?;
        let total = self.val(ii).sum_squares();
        let value = self.pooled_scalar(total);
        let rg = self.rg(ii);
        Ok(self.push(value, Op::SumSquares { input: ii }, rg))
    }

    /// Inverted dropout with the given drop `rate`; the mask is supplied by
    /// the caller (so that the caller owns the RNG stream). Building the mask
    /// in a [`Tape::scratch`] buffer keeps the step allocation-free.
    pub fn dropout(&mut self, input: Var, mask: Tensor) -> Result<Var> {
        let ii = self.check(input)?;
        if mask.shape() != self.val(ii).shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dropout",
                lhs: self.val(ii).shape(),
                rhs: mask.shape(),
            });
        }
        let (r, c) = mask.shape();
        let mut out = self.pool.take_uninit(r, c);
        kernels::zip(self.val(ii).as_slice(), mask.as_slice(), out.as_mut_slice(), |x, m| {
            x * m
        });
        let rg = self.rg(ii);
        Ok(self.push(out, Op::Dropout { input: ii, mask }, rg))
    }

    /// Row-wise inner product producing an `n x 1` column.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (rows, cols) = self.same_shape("rowwise_dot", ia, ib)?;
        let mut out = self.pool.take_uninit(rows, 1);
        kernels::rowwise_dot(
            rows,
            cols,
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            out.as_mut_slice(),
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::RowwiseDot(ia, ib), rg))
    }

    /// Row-wise squared Euclidean distance producing an `n x 1` column.
    pub fn rowwise_sq_dist(&mut self, a: Var, b: Var) -> Result<Var> {
        let (ia, ib) = (self.check(a)?, self.check(b)?);
        let (rows, cols) = self.same_shape("rowwise_sq_dist", ia, ib)?;
        let mut out = self.pool.take_uninit(rows, 1);
        kernels::rowwise_sq_dist(
            rows,
            cols,
            self.val(ia).as_slice(),
            self.val(ib).as_slice(),
            out.as_mut_slice(),
        );
        let rg = self.rg(ia) || self.rg(ib);
        Ok(self.push(out, Op::RowwiseSqDist(ia, ib), rg))
    }

    /// Mean (over rows) KL divergence `KL(N(mu, diag(sigma^2)) || N(0, I))`.
    ///
    /// This is the tractable form of the minimality terms, Eq. (11) of the
    /// paper.
    pub fn kl_std_normal(&mut self, mu: Var, sigma: Var) -> Result<Var> {
        let (im, is) = (self.check(mu)?, self.check(sigma)?);
        self.same_shape("kl_std_normal", im, is)?;
        if self.val(im).rows() == 0 {
            return Err(TensorError::EmptyTensor { op: "kl_std_normal" });
        }
        let total = kernels::kl_std_normal_forward(EPS, self.val(im).as_slice(), self.val(is).as_slice());
        let mean = total / self.val(im).rows() as f32;
        let value = self.pooled_scalar(mean);
        let rg = self.rg(im) || self.rg(is);
        Ok(self.push(value, Op::KlStdNormal { mu: im, sigma: is }, rg))
    }

    /// Mean binary cross-entropy with logits:
    /// `mean( max(x,0) - x*t + ln(1+exp(-|x|)) )`.
    ///
    /// This is the tractable form of the reconstruction (Eq. 13) and
    /// contrastive (Eq. 14) terms, evaluated on sampled positive and negative
    /// pairs.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Tensor) -> Result<Var> {
        let il = self.check(logits)?;
        let x = self.val(il);
        if x.shape() != targets.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "bce_with_logits",
                lhs: x.shape(),
                rhs: targets.shape(),
            });
        }
        if x.is_empty() {
            return Err(TensorError::EmptyTensor { op: "bce_with_logits" });
        }
        let mean = kernels::bce_logits_forward(x.as_slice(), targets.as_slice()) / x.len() as f32;
        let value = self.pooled_scalar(mean);
        let rg = self.rg(il);
        Ok(self.push(value, Op::BceWithLogits { logits: il, targets }, rg))
    }

    /// [`Tape::bce_with_logits`] with the targets copied into pooled storage
    /// (the allocation-free alternative to passing `targets.clone()`).
    pub fn bce_with_logits_copy(&mut self, logits: Var, targets: &Tensor) -> Result<Var> {
        let (r, c) = targets.shape();
        let mut copied = self.pool.take_uninit(r, c);
        copied.copy_from(targets);
        self.bce_with_logits(logits, copied)
    }

    /// Runs the backward pass from the scalar `loss` node and accumulates
    /// parameter gradients into `params`. Returns the loss value.
    ///
    /// Gradient buffers are drawn from (and returned to) the tape's pool and
    /// accumulated in place; nothing is cloned.
    pub fn backward(&mut self, loss: Var, params: &mut ParamSet) -> Result<f32> {
        let il = self.check(loss)?;
        let loss_value = self.val(il).scalar_value()?;
        if !loss_value.is_finite() {
            return Err(TensorError::NonFinite { op: "backward(loss)" });
        }
        // The pool and the slot table are moved out for the duration of the
        // walk so `backprop_node` can borrow the node list immutably while
        // mutating both.
        let mut pool = std::mem::take(&mut self.pool);
        let mut grads = std::mem::take(&mut self.grad_slots);
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        let mut seed = pool.take_uninit(1, 1);
        seed.as_mut_slice()[0] = 1.0;
        grads[il] = Some(seed);

        let mut outcome = Ok(());
        for idx in (0..=il).rev() {
            let grad = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            if self.nodes[idx].requires_grad {
                outcome = self.backprop_node(idx, &grad, &mut grads, &mut pool, params);
            }
            pool.put(grad);
            if outcome.is_err() {
                break;
            }
        }
        for slot in grads.iter_mut() {
            if let Some(t) = slot.take() {
                pool.put(t);
            }
        }
        self.pool = pool;
        self.grad_slots = grads;
        outcome.map(|()| loss_value)
    }

    fn backprop_node(
        &self,
        idx: usize,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
        pool: &mut BufferPool,
        params: &mut ParamSet,
    ) -> Result<()> {
        match &self.nodes[idx].op {
            Op::Constant => {}
            Op::Param(id) => {
                params.accumulate_grad(*id, grad)?;
            }
            Op::Add(a, b) => {
                self.accum_copy(grads, *a, grad, pool);
                self.accum_copy(grads, *b, grad, pool);
            }
            Op::Sub(a, b) => {
                self.accum_copy(grads, *a, grad, pool);
                self.accum_scaled(grads, *b, -1.0, grad, pool);
            }
            Op::Mul(a, b) => {
                self.accum_zip(grads, *a, grad, self.val(*b), pool, |g, o| g * o);
                self.accum_zip(grads, *b, grad, self.val(*a), pool, |g, o| g * o);
            }
            Op::AddRowBroadcast { matrix, row } => {
                self.accum_copy(grads, *matrix, grad, pool);
                if self.rg(*row) {
                    let (rows, cols) = grad.shape();
                    let slot = Self::slot_or_zeroed(grads, *row, 1, cols, pool);
                    for r in 0..rows {
                        for (o, &v) in slot.row_mut(0).iter_mut().zip(grad.row(r)) {
                            *o += v;
                        }
                    }
                }
            }
            Op::Scale { input, factor } => {
                self.accum_scaled(grads, *input, *factor, grad, pool);
            }
            Op::AddScalar { input } => {
                self.accum_copy(grads, *input, grad, pool);
            }
            Op::Matmul(a, b) => {
                // y = A B; dA = G B^T, dB = A^T G
                if self.rg(*a) {
                    // Materialise B^T in pooled scratch and run the tiled
                    // matmul: ~3x faster than the dot-product
                    // `matmul_transpose_b` kernel for the short inner
                    // dimensions of this graph, and B (a weight matrix) is
                    // tiny compared to the activations.
                    let bv = self.val(*b);
                    let (kb, nb) = bv.shape();
                    let (m, n) = grad.shape();
                    debug_assert_eq!(n, nb);
                    let mut bt = pool.take_uninit(nb, kb);
                    {
                        let src = bv.as_slice();
                        let dst = bt.as_mut_slice();
                        for r in 0..kb {
                            for (c, &v) in src[r * nb..(r + 1) * nb].iter().enumerate() {
                                dst[c * kb + r] = v;
                            }
                        }
                    }
                    let mut delta = pool.take_uninit(m, kb);
                    kernels::matmul(m, n, kb, grad.as_slice(), bt.as_slice(), delta.as_mut_slice());
                    pool.put(bt);
                    self.accum_owned(grads, *a, delta, pool);
                }
                if self.rg(*b) {
                    let av = self.val(*a);
                    let (m, k) = av.shape();
                    let n = grad.cols();
                    let mut delta = pool.take_uninit(k, n);
                    kernels::transpose_matmul(m, k, n, av.as_slice(), grad.as_slice(), delta.as_mut_slice());
                    self.accum_owned(grads, *b, delta, pool);
                }
            }
            Op::Spmm { sparse, dense } => {
                // y = S X; dX = S^T G
                if self.rg(*dense) {
                    let n = grad.cols();
                    let mut delta = pool.take_zeroed(sparse.cols(), n);
                    kernels::spmm_transpose(sparse.view(), n, grad.as_slice(), delta.as_mut_slice());
                    self.accum_owned(grads, *dense, delta, pool);
                }
            }
            Op::ConcatCols(a, b) => {
                let ca = self.val(*a).cols();
                self.accum_col_block(grads, *a, grad, 0, ca, pool);
                self.accum_col_block(grads, *b, grad, ca, grad.cols() - ca, pool);
            }
            Op::ConcatRows(a, b) => {
                let (ra, cols) = self.val(*a).shape();
                let split = ra * cols;
                let g = grad.as_slice();
                self.accum_block(grads, *a, ra, cols, &g[..split], pool);
                self.accum_block(grads, *b, grad.rows() - ra, cols, &g[split..], pool);
            }
            Op::GatherRows { input, indices } => {
                if self.rg(*input) {
                    let (rows, cols) = self.val(*input).shape();
                    let slot = Self::slot_or_zeroed(grads, *input, rows, cols, pool);
                    slot.scatter_add_rows(indices, grad)?;
                }
            }
            Op::GatherRowwiseDot { a, b, a_idx, b_idx } => {
                // out[k] = <A[ai], B[bi]>; dA[ai] += g[k] B[bi], dB[bi] += g[k] A[ai]
                let cols = self.val(*a).cols();
                if self.rg(*a) {
                    let (rows, _) = self.val(*a).shape();
                    let bv = self.val(*b);
                    let slot = Self::slot_or_zeroed(grads, *a, rows, cols, pool);
                    kernels::scatter_scaled_rows(
                        cols,
                        grad.as_slice(),
                        bv.as_slice(),
                        b_idx,
                        slot.as_mut_slice(),
                        a_idx,
                    );
                }
                if self.rg(*b) {
                    let (rows, _) = self.val(*b).shape();
                    let av = self.val(*a);
                    let slot = Self::slot_or_zeroed(grads, *b, rows, cols, pool);
                    kernels::scatter_scaled_rows(
                        cols,
                        grad.as_slice(),
                        av.as_slice(),
                        a_idx,
                        slot.as_mut_slice(),
                        b_idx,
                    );
                }
            }
            Op::LeakyRelu { input, slope } => {
                if self.rg(*input) {
                    let x = self.val(*input);
                    match &mut grads[*input] {
                        Some(e) => {
                            kernels::leaky_relu_backward(true, *slope, x.as_slice(), grad.as_slice(), e.as_mut_slice())
                        }
                        slot @ None => {
                            let mut delta = pool.take_uninit(x.rows(), x.cols());
                            kernels::leaky_relu_backward(
                                false,
                                *slope,
                                x.as_slice(),
                                grad.as_slice(),
                                delta.as_mut_slice(),
                            );
                            *slot = Some(delta);
                        }
                    }
                }
            }
            Op::Softplus { input } => {
                if self.rg(*input) {
                    let x = self.val(*input);
                    match &mut grads[*input] {
                        Some(e) => kernels::softplus_backward(true, x.as_slice(), grad.as_slice(), e.as_mut_slice()),
                        slot @ None => {
                            let mut delta = pool.take_uninit(x.rows(), x.cols());
                            kernels::softplus_backward(false, x.as_slice(), grad.as_slice(), delta.as_mut_slice());
                            *slot = Some(delta);
                        }
                    }
                }
            }
            Op::Sigmoid { input } => {
                let y = self.val(idx);
                self.accum_zip(grads, *input, grad, y, pool, |g, y| g * y * (1.0 - y));
            }
            Op::Tanh { input } => {
                let y = self.val(idx);
                self.accum_zip(grads, *input, grad, y, pool, |g, y| g * (1.0 - y * y));
            }
            Op::Exp { input } => {
                let y = self.val(idx);
                self.accum_zip(grads, *input, grad, y, pool, |g, y| g * y);
            }
            Op::Log { input } => {
                let x = self.val(*input);
                self.accum_zip(grads, *input, grad, x, pool, |g, x| g / (x + EPS));
            }
            Op::SumAll { input } => {
                let gscalar = grad.scalar_value()?;
                let (r, c) = self.val(*input).shape();
                self.accum_fill(grads, *input, r, c, gscalar, pool);
            }
            Op::MeanAll { input } => {
                let x = self.val(*input);
                let gscalar = grad.scalar_value()? / x.len() as f32;
                let (r, c) = x.shape();
                self.accum_fill(grads, *input, r, c, gscalar, pool);
            }
            Op::SumSquares { input } => {
                let gscalar = grad.scalar_value()?;
                let x = self.val(*input);
                self.accum_scaled(grads, *input, 2.0 * gscalar, x, pool);
            }
            Op::Dropout { input, mask } => {
                self.accum_zip(grads, *input, grad, mask, pool, |g, m| g * m);
            }
            Op::RowwiseDot(a, b) => {
                // y_r = <a_r, b_r>; dA_r = g_r * b_r; dB_r = g_r * a_r
                self.accum_scale_rows(grads, *a, self.val(*b), grad, 1.0, pool);
                self.accum_scale_rows(grads, *b, self.val(*a), grad, 1.0, pool);
            }
            Op::RowwiseSqDist(a, b) => {
                // y_r = ||a_r - b_r||^2; dA_r = 2 g_r (a_r - b_r); dB_r = -dA_r
                let (av, bv) = (self.val(*a), self.val(*b));
                let mut diff = pool.take_uninit(av.rows(), av.cols());
                av.zip_map_into(bv, &mut diff, |x, y| x - y);
                self.accum_scale_rows(grads, *a, &diff, grad, 2.0, pool);
                self.accum_scale_rows(grads, *b, &diff, grad, -2.0, pool);
                pool.put(diff);
            }
            Op::KlStdNormal { mu, sigma } => {
                let m = self.val(*mu);
                let scale = grad.scalar_value()? / m.rows() as f32;
                self.accum_scaled(grads, *mu, scale, m, pool);
                if self.rg(*sigma) {
                    let s = self.val(*sigma);
                    match &mut grads[*sigma] {
                        Some(e) => kernels::kl_sigma_backward(true, scale, EPS, s.as_slice(), e.as_mut_slice()),
                        slot @ None => {
                            let mut delta = pool.take_uninit(s.rows(), s.cols());
                            kernels::kl_sigma_backward(false, scale, EPS, s.as_slice(), delta.as_mut_slice());
                            *slot = Some(delta);
                        }
                    }
                }
            }
            Op::BceWithLogits { logits, targets } => {
                if self.rg(*logits) {
                    let x = self.val(*logits);
                    let scale = grad.scalar_value()? / x.len() as f32;
                    match &mut grads[*logits] {
                        Some(e) => kernels::bce_logits_backward(
                            true,
                            scale,
                            x.as_slice(),
                            targets.as_slice(),
                            e.as_mut_slice(),
                        ),
                        slot @ None => {
                            let mut delta = pool.take_uninit(x.rows(), x.cols());
                            kernels::bce_logits_backward(
                                false,
                                scale,
                                x.as_slice(),
                                targets.as_slice(),
                                delta.as_mut_slice(),
                            );
                            *slot = Some(delta);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Moves an owned (pooled) delta into a node's slot, or adds it in place
    /// and recycles the storage when a gradient already arrived.
    fn accum_owned(&self, grads: &mut [Option<Tensor>], idx: usize, delta: Tensor, pool: &mut BufferPool) {
        if !self.rg(idx) {
            pool.put(delta);
            return;
        }
        match &mut grads[idx] {
            Some(existing) => {
                debug_assert_eq!(existing.len(), delta.len(), "gradient shapes for a node must agree");
                kernels::add_assign(existing.as_mut_slice(), delta.as_slice());
                pool.put(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Accumulates `src` (the upstream gradient, unscaled) into a node slot.
    fn accum_copy(&self, grads: &mut [Option<Tensor>], idx: usize, src: &Tensor, pool: &mut BufferPool) {
        let (r, c) = src.shape();
        self.accum_block(grads, idx, r, c, src.as_slice(), pool);
    }

    /// Accumulates a contiguous `rows x cols` block of gradient values.
    fn accum_block(
        &self,
        grads: &mut [Option<Tensor>],
        idx: usize,
        rows: usize,
        cols: usize,
        src: &[f32],
        pool: &mut BufferPool,
    ) {
        if !self.rg(idx) {
            return;
        }
        match &mut grads[idx] {
            Some(existing) => {
                debug_assert_eq!(existing.len(), src.len(), "gradient shapes for a node must agree");
                kernels::add_assign(existing.as_mut_slice(), src);
            }
            slot @ None => {
                let mut t = pool.take_uninit(rows, cols);
                t.as_mut_slice().copy_from_slice(src);
                *slot = Some(t);
            }
        }
    }

    /// Accumulates `alpha * src` into a node slot.
    fn accum_scaled(&self, grads: &mut [Option<Tensor>], idx: usize, alpha: f32, src: &Tensor, pool: &mut BufferPool) {
        if !self.rg(idx) {
            return;
        }
        match &mut grads[idx] {
            Some(existing) => {
                debug_assert_eq!(existing.len(), src.len(), "gradient shapes for a node must agree");
                kernels::axpy(alpha, existing.as_mut_slice(), src.as_slice());
            }
            slot @ None => {
                let mut t = pool.take_uninit(src.rows(), src.cols());
                kernels::map(src.as_slice(), t.as_mut_slice(), |v| alpha * v);
                *slot = Some(t);
            }
        }
    }

    /// Accumulates the constant `value` into every element of a node slot
    /// (backward of the full reductions).
    #[allow(clippy::too_many_arguments)]
    fn accum_fill(
        &self,
        grads: &mut [Option<Tensor>],
        idx: usize,
        rows: usize,
        cols: usize,
        value: f32,
        pool: &mut BufferPool,
    ) {
        if !self.rg(idx) {
            return;
        }
        match &mut grads[idx] {
            Some(existing) => {
                for o in existing.as_mut_slice() {
                    *o += value;
                }
            }
            slot @ None => {
                let mut t = pool.take_uninit(rows, cols);
                t.as_mut_slice().fill(value);
                *slot = Some(t);
            }
        }
    }

    /// Accumulates `f(g, x)` elementwise into a node slot without
    /// materialising the intermediate gradient tensor.
    fn accum_zip<F: Fn(f32, f32) -> f32>(
        &self,
        grads: &mut [Option<Tensor>],
        idx: usize,
        g: &Tensor,
        x: &Tensor,
        pool: &mut BufferPool,
        f: F,
    ) {
        if !self.rg(idx) {
            return;
        }
        debug_assert_eq!(g.len(), x.len());
        match &mut grads[idx] {
            Some(existing) => {
                debug_assert_eq!(existing.len(), g.len(), "gradient shapes for a node must agree");
                kernels::zip_accum(g.as_slice(), x.as_slice(), existing.as_mut_slice(), f);
            }
            slot @ None => {
                let mut t = pool.take_uninit(g.rows(), g.cols());
                kernels::zip(g.as_slice(), x.as_slice(), t.as_mut_slice(), f);
                *slot = Some(t);
            }
        }
    }

    /// Accumulates `factor * row_scales[r] * src[r]` into a node slot (the
    /// backward of the row-wise reductions).
    #[allow(clippy::too_many_arguments)]
    fn accum_scale_rows(
        &self,
        grads: &mut [Option<Tensor>],
        idx: usize,
        src: &Tensor,
        row_scales: &Tensor,
        factor: f32,
        pool: &mut BufferPool,
    ) {
        if !self.rg(idx) {
            return;
        }
        let (rows, cols) = src.shape();
        match &mut grads[idx] {
            Some(existing) => kernels::scale_rows(
                rows,
                cols,
                src.as_slice(),
                row_scales.as_slice(),
                factor,
                true,
                existing.as_mut_slice(),
            ),
            slot @ None => {
                let mut t = pool.take_uninit(rows, cols);
                kernels::scale_rows(
                    rows,
                    cols,
                    src.as_slice(),
                    row_scales.as_slice(),
                    factor,
                    false,
                    t.as_mut_slice(),
                );
                *slot = Some(t);
            }
        }
    }

    /// Accumulates a column block of `grad` (backward of `concat_cols`).
    fn accum_col_block(
        &self,
        grads: &mut [Option<Tensor>],
        idx: usize,
        grad: &Tensor,
        col0: usize,
        width: usize,
        pool: &mut BufferPool,
    ) {
        if !self.rg(idx) {
            return;
        }
        let rows = grad.rows();
        match &mut grads[idx] {
            Some(existing) => {
                for r in 0..rows {
                    let src = &grad.row(r)[col0..col0 + width];
                    for (o, &v) in existing.row_mut(r).iter_mut().zip(src) {
                        *o += v;
                    }
                }
            }
            slot @ None => {
                let mut t = pool.take_uninit(rows, width);
                for r in 0..rows {
                    t.row_mut(r).copy_from_slice(&grad.row(r)[col0..col0 + width]);
                }
                *slot = Some(t);
            }
        }
    }

    /// Returns the node's slot, inserting a pooled zeroed tensor when no
    /// gradient arrived yet (for scatter-style accumulation).
    fn slot_or_zeroed<'g>(
        grads: &'g mut [Option<Tensor>],
        idx: usize,
        rows: usize,
        cols: usize,
        pool: &mut BufferPool,
    ) -> &'g mut Tensor {
        grads[idx].get_or_insert_with(|| pool.take_zeroed(rows, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::component_rng;

    fn finite_diff_check<F>(params: &mut ParamSet, ids: &[ParamId], f: F, tol: f32)
    where
        F: Fn(&mut Tape, &ParamSet) -> Var,
    {
        // Analytic gradients.
        params.zero_grad();
        let mut tape = Tape::new();
        let loss = f(&mut tape, params);
        tape.backward(loss, params).unwrap();
        let analytic: Vec<Tensor> = ids.iter().map(|&id| params.grad(id).clone()).collect();

        // Central finite differences.
        let h = 1e-3f32;
        for (k, &id) in ids.iter().enumerate() {
            let (rows, cols) = params.value(id).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.value(id).get(r, c);
                    params.value_mut(id).set(r, c, orig + h);
                    let mut t1 = Tape::new();
                    let l1 = f(&mut t1, params);
                    let up = t1.value(l1).unwrap().scalar_value().unwrap();
                    params.value_mut(id).set(r, c, orig - h);
                    let mut t2 = Tape::new();
                    let l2 = f(&mut t2, params);
                    let down = t2.value(l2).unwrap().scalar_value().unwrap();
                    params.value_mut(id).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * h);
                    let a = analytic[k].get(r, c);
                    assert!(
                        (numeric - a).abs() < tol + tol * numeric.abs().max(a.abs()),
                        "param {k} ({r},{c}): numeric {numeric} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_dense_chain() {
        let mut rng = component_rng(1, "gradcheck-dense");
        let mut params = ParamSet::new();
        let w1 = params
            .add("w1", crate::rng::normal_tensor(&mut rng, 3, 4, 0.5))
            .unwrap();
        let w2 = params
            .add("w2", crate::rng::normal_tensor(&mut rng, 4, 2, 0.5))
            .unwrap();
        let b = params.add("b", crate::rng::normal_tensor(&mut rng, 1, 2, 0.5)).unwrap();
        let x = crate::rng::normal_tensor(&mut rng, 5, 3, 1.0);
        let targets = Tensor::from_vec(5, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();

        finite_diff_check(
            &mut params,
            &[w1, w2, b],
            |tape, params| {
                let xv = tape.constant(x.clone());
                let w1v = tape.param(params, w1);
                let w2v = tape.param(params, w2);
                let bv = tape.param(params, b);
                let h = tape.matmul(xv, w1v).unwrap();
                let h = tape.leaky_relu(h, 0.1).unwrap();
                let o = tape.matmul(h, w2v).unwrap();
                let o = tape.add_row_broadcast(o, bv).unwrap();
                let o = tape.tanh(o).unwrap();
                let dots = tape.rowwise_dot(o, o).unwrap();
                tape.bce_with_logits(dots, targets.clone()).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_vbge_style_chain() {
        // Mimics the VBGE pipeline: spmm -> matmul -> leakyrelu -> concat ->
        // matmul (mu), softplus (sigma) -> KL + reconstruction.
        let mut rng = component_rng(2, "gradcheck-vbge");
        let adj = Arc::new(
            CsrMatrix::from_edges(4, 3, &[(0, 0), (0, 2), (1, 1), (2, 0), (2, 1), (3, 2)])
                .unwrap()
                .row_normalized(),
        );
        let mut params = ParamSet::new();
        let emb = params
            .add("emb", crate::rng::normal_tensor(&mut rng, 4, 3, 0.5))
            .unwrap();
        let wmu = params
            .add("wmu", crate::rng::normal_tensor(&mut rng, 6, 2, 0.5))
            .unwrap();
        let wsig = params
            .add("wsig", crate::rng::normal_tensor(&mut rng, 6, 2, 0.5))
            .unwrap();
        let eps = crate::rng::normal_tensor(&mut rng, 4, 2, 1.0);
        let item_emb = crate::rng::normal_tensor(&mut rng, 4, 2, 0.7);
        let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let adj_t = Arc::new(adj.transpose());

        finite_diff_check(
            &mut params,
            &[emb, wmu, wsig],
            |tape, params| {
                let u = tape.param(params, emb);
                let interim = tape.spmm(&adj_t, u).unwrap(); // items x 3
                let back = tape.spmm(&adj, interim).unwrap(); // users x 3
                let back = tape.leaky_relu(back, 0.1).unwrap();
                let cat = tape.concat_cols(back, u).unwrap(); // users x 6
                let wmu_v = tape.param(params, wmu);
                let wsig_v = tape.param(params, wsig);
                let mu = tape.matmul(cat, wmu_v).unwrap();
                let pre_sig = tape.matmul(cat, wsig_v).unwrap();
                let sigma = tape.softplus(pre_sig).unwrap();
                let noise = tape.constant(eps.clone());
                let scaled = tape.mul(sigma, noise).unwrap();
                let z = tape.add(mu, scaled).unwrap();
                let items = tape.constant(item_emb.clone());
                let scores = tape.rowwise_dot(z, items).unwrap();
                let rec = tape.bce_with_logits(scores, targets.clone()).unwrap();
                let kl = tape.kl_std_normal(mu, sigma).unwrap();
                let kl_scaled = tape.scale(kl, 0.7).unwrap();
                tape.add(rec, kl_scaled).unwrap()
            },
            3e-2,
        );
    }

    #[test]
    fn gradcheck_gather_dropout_and_reductions() {
        let mut rng = component_rng(3, "gradcheck-misc");
        let mut params = ParamSet::new();
        let emb = params
            .add("emb", crate::rng::normal_tensor(&mut rng, 5, 3, 0.5))
            .unwrap();
        // Fixed mask so the function stays deterministic across perturbations.
        let mask = Tensor::from_vec(3, 3, vec![2.0, 0.0, 2.0, 2.0, 2.0, 0.0, 0.0, 2.0, 2.0]).unwrap();
        let idx = vec![0usize, 2, 4];

        finite_diff_check(
            &mut params,
            &[emb],
            |tape, params| {
                let e = tape.param(params, emb);
                let g = tape.gather_rows(e, &idx).unwrap();
                let d = tape.dropout(g, mask.clone()).unwrap();
                let sq = tape.mul(d, d).unwrap();
                let s = tape.mean(sq).unwrap();
                let reg = tape.sum_squares(e).unwrap();
                let reg = tape.scale(reg, 0.01).unwrap();
                tape.add(s, reg).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_remaining_unary_ops() {
        let mut rng = component_rng(4, "gradcheck-unary");
        let mut params = ParamSet::new();
        let w = params
            .add("w", crate::rng::uniform_tensor(&mut rng, 2, 3, 0.2, 1.5))
            .unwrap();
        finite_diff_check(
            &mut params,
            &[w],
            |tape, params| {
                let x = tape.param(params, w);
                let e = tape.exp(x).unwrap();
                let l = tape.log(e).unwrap();
                let sgm = tape.sigmoid(l).unwrap();
                let sp = tape.softplus(sgm).unwrap();
                let shifted = tape.add_scalar(sp, 0.3).unwrap();
                let neg = tape.scale(shifted, -0.5).unwrap();
                let a = tape.sub(sp, neg).unwrap();
                let d = tape.rowwise_sq_dist(a, sp).unwrap();
                tape.sum(d).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_gather_rowwise_dot() {
        let mut rng = component_rng(9, "gradcheck-grd");
        let mut params = ParamSet::new();
        let ua = params
            .add("ua", crate::rng::normal_tensor(&mut rng, 4, 3, 0.5))
            .unwrap();
        let ub = params
            .add("ub", crate::rng::normal_tensor(&mut rng, 5, 3, 0.5))
            .unwrap();
        let a_idx = Arc::new(vec![0usize, 2, 2, 3]);
        let b_idx = Arc::new(vec![4usize, 1, 0, 2]);
        let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        finite_diff_check(
            &mut params,
            &[ua, ub],
            |tape, params| {
                let av = tape.param(params, ua);
                let bv = tape.param(params, ub);
                let dots = tape.gather_rowwise_dot(av, bv, &a_idx, &b_idx).unwrap();
                tape.bce_with_logits(dots, targets.clone()).unwrap()
            },
            2e-2,
        );
    }

    #[test]
    fn gather_rowwise_dot_matches_unfused_ops() {
        let mut rng = component_rng(10, "grd-parity");
        let a = crate::rng::normal_tensor(&mut rng, 6, 4, 1.0);
        let b = crate::rng::normal_tensor(&mut rng, 7, 4, 1.0);
        let a_idx = Arc::new(vec![5usize, 0, 3, 3]);
        let b_idx = Arc::new(vec![1usize, 6, 2, 0]);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let fused = tape.gather_rowwise_dot(av, bv, &a_idx, &b_idx).unwrap();
        let ga = tape.gather_rows(av, &a_idx).unwrap();
        let gb = tape.gather_rows(bv, &b_idx).unwrap();
        let unfused = tape.rowwise_dot(ga, gb).unwrap();
        let f = tape.value(fused).unwrap().clone();
        let u = tape.value(unfused).unwrap();
        for (x, y) in f.as_slice().iter().zip(u.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // index validation
        let bad = Arc::new(vec![99usize]);
        let one = Arc::new(vec![0usize]);
        assert!(tape.gather_rowwise_dot(av, bv, &bad, &one).is_err());
        assert!(tape.gather_rowwise_dot(av, bv, &one, &bad).is_err());
        let short = Arc::new(vec![0usize, 1]);
        assert!(tape.gather_rowwise_dot(av, bv, &one, &short).is_err());
    }

    #[test]
    fn gradcheck_concat_rows() {
        let mut rng = component_rng(5, "gradcheck-cr");
        let mut params = ParamSet::new();
        let a = params.add("a", crate::rng::normal_tensor(&mut rng, 2, 2, 0.5)).unwrap();
        let b = params.add("b", crate::rng::normal_tensor(&mut rng, 3, 2, 0.5)).unwrap();
        finite_diff_check(
            &mut params,
            &[a, b],
            |tape, params| {
                let av = tape.param(params, a);
                let bv = tape.param(params, b);
                let stacked = tape.concat_rows(av, bv).unwrap();
                let sq = tape.mul(stacked, stacked).unwrap();
                tape.sum(sq).unwrap()
            },
            1e-2,
        );
    }

    #[test]
    fn stale_variables_are_rejected() {
        let mut tape = Tape::new();
        let v = tape.constant(Tensor::scalar(1.0));
        tape.reset();
        assert!(matches!(tape.sum(v), Err(TensorError::StaleVariable { .. })));
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::ones(2, 2)).unwrap();
        let v = tape.param(&params, w);
        assert!(tape.backward(v, &mut params).is_err());
    }

    #[test]
    fn backward_rejects_nan_loss() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let v = tape.constant(Tensor::scalar(f32::NAN));
        assert!(matches!(
            tape.backward(v, &mut params),
            Err(TensorError::NonFinite { .. })
        ));
    }

    #[test]
    fn constants_do_not_receive_gradients() {
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 2, 2.0)).unwrap();
        let wv = tape.param(&params, w);
        let c = tape.constant(Tensor::full(1, 2, 3.0));
        let prod = tape.mul(wv, c).unwrap();
        let loss = tape.sum(prod).unwrap();
        let lv = tape.backward(loss, &mut params).unwrap();
        assert!((lv - 12.0).abs() < 1e-6);
        assert_eq!(params.grad(w).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn shared_subexpression_accumulates_gradient() {
        // loss = sum(w * w) should give grad 2w even though w is used twice.
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params
            .add("w", Tensor::from_vec(1, 2, vec![2.0, -3.0]).unwrap())
            .unwrap();
        let wv = tape.param(&params, w);
        let prod = tape.mul(wv, wv).unwrap();
        let loss = tape.sum(prod).unwrap();
        tape.backward(loss, &mut params).unwrap();
        assert_eq!(params.grad(w).as_slice(), &[4.0, -6.0]);
    }

    #[test]
    fn sigmoid_softplus_scalar_stability() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid_scalar(100.0) > 0.999);
        assert!(sigmoid_scalar(-100.0) < 1e-4);
        assert!(sigmoid_scalar(-1000.0).is_finite());
        assert!((softplus_scalar(30.0) - 30.0).abs() < 1e-3);
        assert!(softplus_scalar(-30.0) > 0.0);
        assert!(softplus_scalar(-1000.0).is_finite());
        assert!((softplus_scalar(0.0) - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn bce_matches_manual_value() {
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 1, vec![0.0, 2.0]).unwrap());
        let targets = Tensor::from_vec(2, 1, vec![1.0, 0.0]).unwrap();
        let loss = tape.bce_with_logits(logits, targets).unwrap();
        let expected = ((2.0f32).ln() + (2.0 + (1.0 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((tape.value(loss).unwrap().scalar_value().unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn kl_zero_for_standard_normal() {
        let mut tape = Tape::new();
        let mu = tape.constant(Tensor::zeros(3, 4));
        let sigma = tape.constant(Tensor::ones(3, 4));
        let kl = tape.kl_std_normal(mu, sigma).unwrap();
        assert!(tape.value(kl).unwrap().scalar_value().unwrap().abs() < 1e-5);
        // KL grows when the distribution moves away from the prior.
        let mu2 = tape.constant(Tensor::full(3, 4, 1.0));
        let sigma2 = tape.constant(Tensor::full(3, 4, 2.0));
        let kl2 = tape.kl_std_normal(mu2, sigma2).unwrap();
        assert!(tape.value(kl2).unwrap().scalar_value().unwrap() > 1.0);
    }

    #[test]
    fn tape_reset_reuses_allocation() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::ones(2, 2));
        let _ = tape.sum(a).unwrap();
        assert_eq!(tape.len(), 2);
        tape.reset();
        assert!(tape.is_empty());
        let b = tape.constant(Tensor::ones(1, 1));
        assert_eq!(b.index(), 0);
        // The 2x2 node value went back to the pool, so the next same-sized
        // request is served from recycled storage.
        let before = tape.pool_stats();
        let c = tape.constant_copy(&Tensor::ones(2, 2));
        assert_eq!(tape.value(c).unwrap().as_slice(), &[1.0; 4]);
        assert_eq!(tape.pool_stats().hits, before.hits + 1);
    }

    /// Runs one forward + backward of a small mixed graph on the given tape.
    fn run_mixed_step(tape: &mut Tape, params: &mut ParamSet, w: ParamId, x: &Tensor, targets: &Tensor) -> f32 {
        params.zero_grad();
        let xv = tape.constant_copy(x);
        let wv = tape.param(params, w);
        let h = tape.matmul(xv, wv).unwrap();
        let h = tape.leaky_relu(h, 0.1).unwrap();
        let dots = tape.rowwise_dot(h, h).unwrap();
        let rec = tape.bce_with_logits_copy(dots, targets).unwrap();
        let reg = tape.sum_squares(wv).unwrap();
        let reg = tape.scale(reg, 0.01).unwrap();
        let loss = tape.add(rec, reg).unwrap();
        tape.backward(loss, params).unwrap()
    }

    #[test]
    fn reused_tape_matches_fresh_tape_exactly() {
        let mut rng = component_rng(6, "reuse-parity");
        let x = crate::rng::normal_tensor(&mut rng, 4, 3, 1.0);
        let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let make_params = |rng: &mut rand::rngs::StdRng| {
            let mut p = ParamSet::new();
            let w = p.add("w", crate::rng::normal_tensor(rng, 3, 2, 0.5)).unwrap();
            (p, w)
        };
        let mut seed_rng = component_rng(7, "weights");
        let (mut p1, w1) = make_params(&mut seed_rng);
        let mut seed_rng = component_rng(7, "weights");
        let (mut p2, w2) = make_params(&mut seed_rng);

        // Reused tape: warm it up with two resets, then a measured step.
        let mut reused = Tape::new();
        for _ in 0..3 {
            reused.reset();
            run_mixed_step(&mut reused, &mut p1, w1, &x, &targets);
        }
        // Fresh tape every time (the pre-pool behaviour).
        let mut fresh = Tape::new();
        let l2 = run_mixed_step(&mut fresh, &mut p2, w2, &x, &targets);

        reused.reset();
        let l1 = run_mixed_step(&mut reused, &mut p1, w1, &x, &targets);
        assert_eq!(l1, l2, "loss must be identical on a warm tape");
        assert_eq!(
            p1.grad(w1).as_slice(),
            p2.grad(w2).as_slice(),
            "gradients must be bit-identical regardless of buffer reuse"
        );
    }

    #[test]
    fn warm_steps_hit_the_pool_only() {
        let mut rng = component_rng(8, "warm-pool");
        let x = crate::rng::normal_tensor(&mut rng, 4, 3, 1.0);
        let targets = Tensor::from_vec(4, 1, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let mut params = ParamSet::new();
        let w = params.add("w", crate::rng::normal_tensor(&mut rng, 3, 2, 0.5)).unwrap();
        let mut tape = Tape::new();
        for _ in 0..2 {
            tape.reset();
            run_mixed_step(&mut tape, &mut params, w, &x, &targets);
        }
        let misses_after_warmup = tape.pool_stats().misses;
        for _ in 0..3 {
            tape.reset();
            run_mixed_step(&mut tape, &mut params, w, &x, &targets);
        }
        assert_eq!(
            tape.pool_stats().misses,
            misses_after_warmup,
            "a warm step must not allocate any new tensor storage"
        );
    }

    #[test]
    fn scratch_buffers_join_the_recycling_cycle() {
        let mut tape = Tape::new();
        let mut mask = tape.scratch(2, 3);
        mask.as_mut_slice().fill(2.0);
        let input = tape.constant(Tensor::ones(2, 3));
        let dropped = tape.dropout(input, mask).unwrap();
        assert_eq!(tape.value(dropped).unwrap().as_slice(), &[2.0; 6]);
        tape.reset();
        // mask + input + output all recycled.
        let stats = tape.pool_stats();
        assert!(stats.parked >= 3);
        let unused = tape.scratch(5, 5);
        tape.recycle(unused);
        assert_eq!(tape.pool_stats().parked, stats.parked + 1);
    }

    #[test]
    fn non_grad_operands_skip_accumulation() {
        // add/sub with a constant operand: the constant side must not receive
        // (or allocate) a gradient buffer.
        let mut tape = Tape::new();
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::full(1, 3, 2.0)).unwrap();
        let wv = tape.param(&params, w);
        let c = tape.constant(Tensor::full(1, 3, 5.0));
        let s = tape.add(wv, c).unwrap();
        let d = tape.sub(s, c).unwrap();
        let loss = tape.sum(d).unwrap();
        tape.backward(loss, &mut params).unwrap();
        assert_eq!(params.grad(w).as_slice(), &[1.0, 1.0, 1.0]);
    }
}
