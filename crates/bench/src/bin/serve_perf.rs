//! Serving-path performance benchmark: the full train → freeze → load →
//! recommend pipeline.
//!
//! Trains CDRIB briefly on a synthetic preset, freezes it into a versioned
//! model artifact, reloads the artifact the way a serving process would
//! (`Recommender::from_artifact_file`), verifies the frozen forward matches
//! the tape forward bit for bit and that bounded-heap top-K selection equals
//! full-sort selection, then measures:
//!
//! * single-request latency (p50 / p99) over cold-start users of both
//!   transfer directions;
//! * batched throughput in requests/s and raw candidate scores/s (each
//!   request scores the full opposite-domain catalogue);
//! * steady-state allocator requests per warm request (must be zero; the
//!   `alloc_regression` integration test enforces the same property);
//! * **online delta ingestion**: batches of new cold-start users with fresh
//!   source-domain interactions applied through `Recommender::apply_delta`
//!   (graph apply + incremental re-encode + epoch table swap), gated on
//!   bitwise parity with a full rebuild and on zero steady-state
//!   allocations for replayed (duplicate) batches.
//!
//! * **int8 quantised scoring** (`ScoringPrecision::Int8`): the same
//!   request mix through the VNNI/AVX2/portable integer kernels, gated on
//!   recall@10 >= 0.99 against the f32 lists and 0 steady-state allocs, with
//!   table bytes, ns/candidate and the speedup over f32 recorded;
//! * **thread scaling**: batched throughput swept over explicit worker
//!   counts (`Recommender::recommend_batch_with_workers`), so multi-core
//!   serve is measured whenever a multi-core runner shows up.
//!
//! Every number here is **closed-loop**: the measuring thread calls the
//! engine and waits, so offered load adapts to service rate and queueing
//! delay never appears. The network front-end's **open-loop** numbers —
//! Poisson arrivals at fixed offered rates, p50/p99/p999 from scheduled
//! arrival time, load shedding beyond capacity — come from the `load_gen`
//! binary and land in the `server` section of the same `BENCH_serve.json`
//! (run `load_gen` after this binary; it preserves every section written
//! here and replaces only `server`).
//!
//! Results are written to `BENCH_serve.json` (override with `--out`). Usage:
//!
//! ```text
//! serve_perf [--scale tiny|small] [--epochs N] [--requests N] [--k K] [--threads N] [--quick] [--out PATH]
//! ```

use cdrib_bench::Args;
use cdrib_core::{CdribConfig, CdribModel, InferenceModel};
use cdrib_data::{build_preset, Direction, DomainId, EpochBatches, Scale, ScenarioKind};
use cdrib_eval::EmbeddingScorer;
use cdrib_graph::{BipartiteGraph, GraphDelta};
use cdrib_serve::{Recommendation, Recommender, Request, ScoringPrecision};
use cdrib_tensor::alloc_track::{allocation_count, CountingAlloc};
use cdrib_tensor::rng::{component_rng, normal_tensor};
use cdrib_tensor::{kernels, Adam, Optimizer, QuantizedTable, Tape};
use std::collections::HashSet;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Trains a model for `epochs` (no in-loop validation; the artifact is the
/// deliverable, not the metric).
fn train_briefly(scenario: &cdrib_data::CdrScenario, config: &CdribConfig, epochs: usize) -> CdribModel {
    let mut model = CdribModel::new(config, scenario).expect("model construction");
    let mut opt = Adam::new(config.learning_rate, 0.9, 0.999, 1e-8, config.l2_weight);
    let mut rng = component_rng(config.seed, "serve-perf-train");
    let mut tape = Tape::new();
    let (mut x_epoch, mut y_epoch) = (EpochBatches::new(), EpochBatches::new());
    for _ in 0..epochs {
        model
            .make_batches_into(scenario, &mut rng, &mut x_epoch, &mut y_epoch)
            .expect("batches");
        for (xb, yb) in x_epoch.iter().zip(y_epoch.iter()) {
            model.params_mut().zero_grad();
            tape.reset();
            let (loss, _) = model.loss(&mut tape, xb, yb, &mut rng).expect("loss");
            let value = tape.backward(loss, model.params_mut()).expect("backward");
            assert!(value.is_finite(), "training diverged during the benchmark");
            model.params_mut().clip_grad_norm(20.0);
            opt.step(model.params_mut()).expect("optimizer step");
        }
    }
    model
}

/// The serving request mix: cold-start test users of both directions, each
/// asking for the same K — the workload the paper's protocol implies.
fn request_mix(scenario: &cdrib_data::CdrScenario, k: usize) -> Vec<Request> {
    let mut requests = Vec::new();
    for &user in &scenario.cold_x_to_y.test_users {
        requests.push(Request {
            direction: Direction::X_TO_Y,
            user,
            k,
        });
    }
    for &user in &scenario.cold_y_to_x.test_users {
        requests.push(Request {
            direction: Direction::Y_TO_X,
            user,
            k,
        });
    }
    assert!(!requests.is_empty(), "preset scenarios always hold cold-start users");
    requests
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = Args::from_env();
    // Thread pinning must precede the first kernel dispatch: the worker pool
    // size latches `CDRIB_NUM_THREADS` once per process.
    if let Some(threads) = args.get("threads") {
        std::env::set_var("CDRIB_NUM_THREADS", threads);
    }
    let quick = args.get("quick").is_some();
    let scale = match args.get("scale").unwrap_or("tiny") {
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => Scale::Tiny,
    };
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Full => "full",
        _ => "tiny",
    };
    let train_epochs: usize = args.get_or("epochs", if quick { 8 } else { 40 });
    let k: usize = args.get_or("k", 10);
    let out_path = args.get("out").unwrap_or("BENCH_serve.json").to_string();
    let seed: u64 = args.get_or("seed", 42);

    let scenario = build_preset(ScenarioKind::GameVideo, scale, seed).expect("preset scenario");
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        batches_per_epoch: 2,
        eval_every: 0,
        patience: 0,
        seed,
        ..CdribConfig::default()
    };
    eprintln!(
        "serve_perf: scenario game_video/{scale_name}, catalogues {} + {} items, dim {}, {} train epochs, isa {}, {} thread(s)",
        scenario.x.n_items,
        scenario.y.n_items,
        config.dim,
        train_epochs,
        kernels::active_isa(),
        kernels::parallelism(),
    );

    // --- Train, freeze, reload: the full artifact hand-off. -----------------
    let model = train_briefly(&scenario, &config, train_epochs);
    let artifact_path = std::env::temp_dir().join(format!("cdrib_serve_perf_{seed}.cdrb"));
    model
        .save_file(&scenario, &artifact_path)
        .expect("write model artifact");
    let artifact_bytes = std::fs::metadata(&artifact_path).expect("artifact metadata").len();

    // The serving process's view: artifact file -> frozen model -> engine.
    let (mut inference, loaded_scenario) =
        InferenceModel::from_artifact_file(&artifact_path).expect("load model artifact");
    // Frozen forward must equal the tape forward bit for bit.
    let tape_embeddings = model.infer_embeddings().expect("tape embeddings");
    let frozen_embeddings = inference.embeddings().expect("frozen embeddings");
    assert_eq!(
        tape_embeddings.x_users, frozen_embeddings.x_users,
        "frozen forward diverged from the tape forward"
    );
    assert_eq!(tape_embeddings.y_items, frozen_embeddings.y_items);
    let mut recommender = Recommender::from_inference(&mut inference, &loaded_scenario).expect("recommender");
    std::fs::remove_file(&artifact_path).ok();

    let requests = request_mix(&loaded_scenario, k);
    // Candidates scored per request = the target-domain catalogue size.
    let candidates_per_request: u64 = requests
        .iter()
        .map(|r| recommender.catalogue_size(r.direction.target) as u64)
        .sum::<u64>()
        / requests.len() as u64;

    // --- Correctness gates before any timing. -------------------------------
    let mut out: Vec<Recommendation> = Vec::new();
    for request in requests.iter().take(32) {
        recommender.recommend(request, &mut out).expect("recommend");
        let reference = recommender.recommend_full_sort(request).expect("full sort");
        assert_eq!(out, reference, "bounded-heap top-K diverged from full sort");
        assert!(out.len() <= request.k);
    }
    eprintln!(
        "parity     : heap top-K identical to full-sort top-K on {} requests",
        32.min(requests.len())
    );

    // --- Warm-up, then steady-state allocation audit. -----------------------
    for request in &requests {
        recommender.recommend(request, &mut out).expect("warm-up");
    }
    let allocs_before = allocation_count();
    let audit_rounds = 50usize;
    for request in requests.iter().cycle().take(audit_rounds) {
        recommender.recommend(request, &mut out).expect("audited request");
    }
    let allocs_per_request = (allocation_count() - allocs_before) as f64 / audit_rounds as f64;

    // --- Single-request latency. -------------------------------------------
    let latency_rounds = if quick { 4usize } else { 20 };
    let mut latencies_us: Vec<f64> = Vec::with_capacity(latency_rounds * requests.len());
    for _ in 0..latency_rounds {
        for request in &requests {
            let started = Instant::now();
            recommender.recommend(request, &mut out).expect("latency request");
            latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
        }
    }
    latencies_us.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);

    // --- Batched throughput. ------------------------------------------------
    let mut responses: Vec<Vec<Recommendation>> = Vec::new();
    recommender
        .recommend_batch(&requests, &mut responses)
        .expect("batch warm-up");
    let batch_rounds = if quick { 6usize } else { 30 };
    let started = Instant::now();
    for _ in 0..batch_rounds {
        recommender
            .recommend_batch(&requests, &mut responses)
            .expect("batch round");
    }
    let batch_secs = started.elapsed().as_secs_f64();
    let total_requests = (batch_rounds * requests.len()) as f64;
    let recs_per_sec = total_requests / batch_secs;
    let scores_per_sec = total_requests * candidates_per_request as f64 / batch_secs;

    // --- Thread-scaling sweep over the batch fan-out. -----------------------
    // On a single-core runner this is one entry; on a multi-core box the
    // sweep shows how batched serve scales across `thread::scope` workers.
    let max_workers = kernels::parallelism().max(1);
    let mut threads_sweep: Vec<(usize, f64)> = Vec::new();
    for workers in 1..=max_workers {
        recommender
            .recommend_batch_with_workers(&requests, &mut responses, workers)
            .expect("sweep warm-up");
        let started = Instant::now();
        for _ in 0..batch_rounds {
            recommender
                .recommend_batch_with_workers(&requests, &mut responses, workers)
                .expect("sweep round");
        }
        threads_sweep.push((workers, total_requests / started.elapsed().as_secs_f64()));
    }

    // --- Int8 quantised scoring. --------------------------------------------
    // The same request mix through the integer kernels: retrieval parity vs
    // the f32 lists is the gate, then the f32 measurements are repeated.
    let mut f32_responses: Vec<Vec<Recommendation>> = Vec::new();
    recommender
        .recommend_batch(&requests, &mut f32_responses)
        .expect("f32 reference lists");
    recommender.set_precision(ScoringPrecision::Int8);
    let (mut hits, mut total, mut exact) = (0usize, 0usize, 0usize);
    for (request, f32_list) in requests.iter().zip(f32_responses.iter()) {
        recommender.recommend(request, &mut out).expect("int8 request");
        let want: HashSet<u32> = f32_list.iter().map(|r| r.item).collect();
        hits += out.iter().filter(|r| want.contains(&r.item)).count();
        total += f32_list.len();
        exact += usize::from(f32_list.iter().map(|r| r.item).eq(out.iter().map(|r| r.item)));
    }
    let int8_recall = hits as f64 / total.max(1) as f64;
    let int8_exact_rate = exact as f64 / requests.len() as f64;
    assert!(
        int8_recall >= 0.99,
        "int8 retrieval must keep recall@{k} >= 0.99 vs f32, got {int8_recall:.4}"
    );

    // Steady-state allocation audit on the int8 path.
    for request in &requests {
        recommender.recommend(request, &mut out).expect("int8 warm-up");
    }
    let allocs_before = allocation_count();
    for request in requests.iter().cycle().take(audit_rounds) {
        recommender.recommend(request, &mut out).expect("audited int8 request");
    }
    let int8_allocs_per_request = (allocation_count() - allocs_before) as f64 / audit_rounds as f64;
    assert_eq!(
        int8_allocs_per_request, 0.0,
        "warm int8 requests must not touch the allocator"
    );

    // Int8 latency and batched throughput.
    let mut int8_latencies_us: Vec<f64> = Vec::with_capacity(latency_rounds * requests.len());
    for _ in 0..latency_rounds {
        for request in &requests {
            let started = Instant::now();
            recommender.recommend(request, &mut out).expect("int8 latency request");
            int8_latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
        }
    }
    int8_latencies_us.sort_by(f64::total_cmp);
    let int8_p50 = percentile(&int8_latencies_us, 0.50);
    let int8_p99 = percentile(&int8_latencies_us, 0.99);
    recommender
        .recommend_batch(&requests, &mut responses)
        .expect("int8 batch warm-up");
    let started = Instant::now();
    for _ in 0..batch_rounds {
        recommender
            .recommend_batch(&requests, &mut responses)
            .expect("int8 batch round");
    }
    let int8_batch_secs = started.elapsed().as_secs_f64();
    let int8_recs_per_sec = total_requests / int8_batch_secs;
    let int8_scores_per_sec = total_requests * candidates_per_request as f64 / int8_batch_secs;
    let int8_speedup = int8_scores_per_sec / scores_per_sec;

    // Table footprint: the f32 item tables the int8 mirrors replace.
    let f32_table_bytes = (recommender.scorer().x_items.as_slice().len()
        + recommender.scorer().y_items.as_slice().len())
        * std::mem::size_of::<f32>();
    let int8_table_bytes = recommender.quantized_items(DomainId::X).expect("quant x").table_bytes()
        + recommender.quantized_items(DomainId::Y).expect("quant y").table_bytes();
    let table_compression = f32_table_bytes as f64 / int8_table_bytes as f64;
    recommender.set_precision(ScoringPrecision::F32);

    // --- Catalogue-scale int8 stress. ---------------------------------------
    // The CI presets shrink catalogues to a few hundred items, which keeps
    // both precisions cache-resident and hides the memory-traffic cost int8
    // removes. Real cross-domain catalogues hold tens of thousands of items,
    // so the quantisation speedup is measured against a serving engine over
    // a catalogue of that shape (random tables — throughput does not depend
    // on the values, and retrieval parity is gated on the trained preset
    // above and in `tests/quant_parity.rs`).
    let stress_items = 65_536usize;
    let stress_users = 64usize;
    let mut stress_rng = component_rng(seed, "serve-perf-stress");
    let mk = |rng: &mut _, rows: usize| normal_tensor(rng, rows, config.dim, 0.5);
    let stress_scorer = EmbeddingScorer::dot(
        mk(&mut stress_rng, stress_users),
        mk(&mut stress_rng, stress_items),
        mk(&mut stress_rng, stress_users),
        mk(&mut stress_rng, stress_items),
    );
    let empty = BipartiteGraph::new(stress_users, stress_items, &[]).expect("stress graph");
    let mut stress = Recommender::new(stress_scorer, empty.clone(), empty).expect("stress engine");
    let stress_requests: Vec<Request> = (0..stress_users as u32)
        .flat_map(|user| [Direction::X_TO_Y, Direction::Y_TO_X].map(|direction| Request { direction, user, k }))
        .collect();
    let stress_rounds = if quick { 2usize } else { 12 };
    let stress_candidates = (stress_requests.len() * stress_items) as f64;
    let mut stress_sps = [0.0f64; 2]; // [f32, int8]
    for (slot, precision) in [(0usize, ScoringPrecision::F32), (1, ScoringPrecision::Int8)] {
        stress.set_precision(precision);
        stress
            .recommend_batch(&stress_requests, &mut responses)
            .expect("stress warm-up");
        let started = Instant::now();
        for _ in 0..stress_rounds {
            stress
                .recommend_batch(&stress_requests, &mut responses)
                .expect("stress round");
        }
        stress_sps[slot] = stress_rounds as f64 * stress_candidates / started.elapsed().as_secs_f64();
    }
    let stress_speedup = stress_sps[1] / stress_sps[0];
    eprintln!(
        "int8 stress: {stress_items}-item catalogue, dim {}: f32 {:.0}M scores/s, int8 {:.0}M scores/s ({stress_speedup:.2}x)",
        config.dim,
        stress_sps[0] / 1e6,
        stress_sps[1] / 1e6,
    );
    assert!(
        stress_speedup >= 1.5,
        "int8 must beat f32 scoring on a catalogue-scale table, got {stress_speedup:.2}x"
    );
    drop(stress);

    // --- Online delta ingestion. --------------------------------------------
    // Fresh cold-start users arrive in batches with new source-domain (X)
    // interactions; each batch flows through `apply_delta` — graph apply,
    // dirty-set propagation, incremental re-encode, epoch table swap.
    use rand::Rng;
    let mut online = Recommender::from_inference_online(InferenceModel::from_model(&model), &loaded_scenario)
        .expect("online engine");
    // The online engine serves int8 so the measured ingest path includes the
    // per-delta re-quantisation of dirty rows inside the epoch swap.
    online.set_precision(ScoringPrecision::Int8);
    let mut delta_rng = component_rng(seed, "serve-perf-delta");
    let (users_per_batch, edges_per_user) = (8usize, 4usize);
    let mut make_growth_delta = |rec: &Recommender| {
        let base_user = rec.seen_graph(DomainId::X).n_users() as u32;
        let n_items = rec.seen_graph(DomainId::X).n_items();
        let mut edges = Vec::with_capacity(users_per_batch * edges_per_user);
        for u in 0..users_per_batch as u32 {
            for _ in 0..edges_per_user {
                edges.push((base_user + u, delta_rng.gen_range(0..n_items) as u32));
            }
        }
        GraphDelta {
            add_users: users_per_batch,
            add_items: 0,
            edges,
            ..GraphDelta::empty()
        }
    };
    // Warm-up batch sizes pools, stamps and shadow tables.
    online
        .apply_delta(DomainId::X, &make_growth_delta(&online))
        .expect("warm delta");
    let delta_rounds = if quick { 8usize } else { 40 };
    let mut rows_reencoded: u64 = 0;
    let mut delta_edges_added: u64 = 0;
    let started = Instant::now();
    for _ in 0..delta_rounds {
        let delta = make_growth_delta(&online);
        let outcome = online.apply_delta(DomainId::X, &delta).expect("growth delta");
        rows_reencoded += (outcome.users_reencoded + outcome.items_reencoded) as u64;
        delta_edges_added += outcome.edges_added as u64;
    }
    let delta_secs = started.elapsed().as_secs_f64();
    let delta_batches_per_sec = delta_rounds as f64 / delta_secs;
    let delta_rows_mean = rows_reencoded as f64 / delta_rounds as f64;

    // Quant-mirror coherence: after every ingest the served int8 tables must
    // equal a from-scratch quantisation of the served f32 tables.
    for domain in [DomainId::X, DomainId::Y] {
        let table = match domain {
            DomainId::X => &online.scorer().x_items,
            DomainId::Y => &online.scorer().y_items,
        };
        assert_eq!(
            online.quantized_items(domain).expect("online quant table"),
            &QuantizedTable::from_tensor(table),
            "post-delta quant mirror diverged from re-quantisation ({domain:?})"
        );
    }

    // Correctness gate: the incrementally updated engine must be bitwise
    // identical to a full re-freeze on the post-delta graph, and the newest
    // cold user's top-K must match the rebuilt engine's full-sort reference.
    let gx = online.seen_graph(DomainId::X).clone();
    let gy = online.seen_graph(DomainId::Y).clone();
    let mut rebuilt = InferenceModel::from_model(&model);
    rebuilt
        .extend_entities(DomainId::X, gx.n_users(), gx.n_items())
        .expect("extend");
    rebuilt.rebind_graph(DomainId::X, &gx).expect("rebind");
    let rebuilt_embeddings = rebuilt.embeddings().expect("rebuilt forward");
    assert_eq!(
        online.scorer().x_users,
        rebuilt_embeddings.x_users,
        "incremental user table diverged from the full rebuild"
    );
    assert_eq!(
        online.scorer().x_items,
        rebuilt_embeddings.x_items,
        "incremental item table diverged from the full rebuild"
    );
    let mut rebuilt_rec = Recommender::new(rebuilt_embeddings.into_scorer(), gx.clone(), gy).expect("rebuilt engine");
    rebuilt_rec.set_shared_user_prefix(online.shared_user_prefix());
    let newest = Request {
        direction: Direction::X_TO_Y,
        user: gx.n_users() as u32 - 1,
        k,
    };
    // `recommend_full_sort` is the f32 reference baseline, so the bitwise
    // comparison runs with f32 scoring; int8 comes back on for the replay
    // audit below.
    online.set_precision(ScoringPrecision::F32);
    online.recommend(&newest, &mut out).expect("newest user");
    assert_eq!(
        out,
        rebuilt_rec.recommend_full_sort(&newest).expect("rebuilt full sort"),
        "incremental top-K diverged from the rebuilt engine"
    );
    online.set_precision(ScoringPrecision::Int8);

    // Steady-state allocation audit: replayed (duplicate) batches drive the
    // whole ingest path without growing any structure — must be 0 allocs.
    let replay = GraphDelta {
        add_users: 0,
        add_items: 0,
        edges: online.seen_graph(DomainId::X).edges()[..users_per_batch * edges_per_user / 2].to_vec(),
        ..GraphDelta::empty()
    };
    for _ in 0..2 {
        online.apply_delta(DomainId::X, &replay).expect("warm replay");
    }
    let allocs_before = allocation_count();
    let replay_rounds = 20usize;
    for _ in 0..replay_rounds {
        online.apply_delta(DomainId::X, &replay).expect("audited replay");
    }
    let delta_allocs_per_batch = (allocation_count() - allocs_before) as f64 / replay_rounds as f64;

    // --- Retraction pricing: removal batches next to growth batches. --------
    // Each batch GDPR-erases one growth batch's worth of cold users (each
    // carrying ~edges_per_user edges), driving the full shrink path: graph
    // retraction, dirty-set propagation over the shrunken neighbourhoods,
    // zero-row erasure, and re-quantisation of the dirty item rows behind
    // the epoch swap.
    let total_cold = ((delta_rounds + 1) * users_per_batch) as u32;
    let cold_base = online.seen_graph(DomainId::X).n_users() as u32 - total_cold;
    let removal_rounds = delta_rounds;
    let mut removal_edges_retracted: u64 = 0;
    let started = Instant::now();
    for r in 0..removal_rounds as u32 {
        let erase = GraphDelta {
            erase_users: (0..users_per_batch as u32)
                .map(|u| cold_base + r * users_per_batch as u32 + u)
                .collect(),
            ..GraphDelta::empty()
        };
        let outcome = online.apply_delta(DomainId::X, &erase).expect("removal batch");
        removal_edges_retracted += outcome.edges_removed as u64;
    }
    let removal_batches_per_sec = removal_rounds as f64 / started.elapsed().as_secs_f64();
    assert_eq!(
        online.erased_users(DomainId::X).len(),
        removal_rounds * users_per_batch,
        "every erased user must be tombstoned exactly once"
    );

    eprintln!(
        "latency    : p50 {p50:.1} us, p99 {p99:.1} us over {} single requests ({candidates_per_request} candidates each, k={k})",
        latencies_us.len()
    );
    eprintln!(
        "deltas     : {delta_batches_per_sec:.0} batches/s ({users_per_batch} new users x {edges_per_user} edges, {:.1} rows re-encoded/batch, {} edges total); replay steady state {delta_allocs_per_batch:.2} allocs/batch",
        delta_rows_mean,
        delta_edges_added,
    );
    eprintln!(
        "retraction : {removal_batches_per_sec:.0} batches/s ({users_per_batch} erased users/batch, {removal_edges_retracted} edges retracted total)"
    );
    assert_eq!(
        delta_allocs_per_batch, 0.0,
        "steady-state (duplicate) delta batches must not touch the allocator"
    );

    // --- WAL-backed durable ingestion. --------------------------------------
    // The same growth-batch workload through a recovered (durable) engine:
    // every accepted batch is framed, checksummed and appended to the
    // write-ahead log *before* its epoch swap commits. A fresh memory-only
    // engine runs the identical workload shape to price the append, and the
    // run is gated on `Recommender::recover` reproducing the live state
    // bitwise from the base artifact + log alone.
    let wal_dir = std::env::temp_dir().join(format!("cdrib_serve_perf_wal_{seed}"));
    std::fs::create_dir_all(&wal_dir).expect("wal scratch dir");
    let wal_base = wal_dir.join("base.cdrb");
    let wal_log = wal_dir.join("deltas.wal");
    std::fs::remove_file(&wal_log).ok();
    std::fs::write(&wal_base, model.save_bytes(&loaded_scenario)).expect("write wal base artifact");
    let (mut durable, recovery) = Recommender::recover(&wal_base, &wal_log).expect("open durable engine");
    assert!(recovery.clean() && recovery.created_log, "first boot must be clean");
    let mut plain = Recommender::from_inference_online(InferenceModel::from_model(&model), &loaded_scenario)
        .expect("unlogged engine");
    durable
        .apply_delta(DomainId::X, &make_growth_delta(&durable))
        .expect("warm durable delta");
    plain
        .apply_delta(DomainId::X, &make_growth_delta(&plain))
        .expect("warm unlogged delta");
    let wal_rounds = if quick { 8usize } else { 40 };
    let mut wal_bps = [0.0f64; 2]; // [durable, unlogged]
    for (slot, engine) in [(0usize, &mut durable), (1, &mut plain)] {
        let started = Instant::now();
        for _ in 0..wal_rounds {
            let delta = make_growth_delta(engine);
            engine.apply_delta(DomainId::X, &delta).expect("measured delta");
        }
        wal_bps[slot] = wal_rounds as f64 / started.elapsed().as_secs_f64();
    }
    let wal_overhead_pct = (wal_bps[1] / wal_bps[0] - 1.0) * 100.0;
    durable.wal_sync().expect("wal sync");
    let wal_records = durable.wal_applied_seq().expect("durable engine has a log");
    let wal_log_bytes = std::fs::metadata(&wal_log).expect("log metadata").len();
    let wal_bytes_per_record = wal_log_bytes as f64 / wal_records as f64;

    // Recovery gate: base + log alone must reproduce the live engine —
    // bitwise on all four tables, exactly-equal top-K for the newest user.
    let (mut recovered, recovery) = Recommender::recover(&wal_base, &wal_log).expect("recover durable engine");
    assert!(
        recovery.clean(),
        "recovery of an intact log must be clean: {recovery:?}"
    );
    assert_eq!(recovery.replayed as u64, wal_records);
    assert_eq!(
        recovered.scorer().x_users,
        durable.scorer().x_users,
        "recovered user table diverged from the live engine"
    );
    assert_eq!(recovered.scorer().x_items, durable.scorer().x_items);
    assert_eq!(recovered.scorer().y_users, durable.scorer().y_users);
    assert_eq!(recovered.scorer().y_items, durable.scorer().y_items);
    let newest_durable = Request {
        direction: Direction::X_TO_Y,
        user: durable.seen_graph(DomainId::X).n_users() as u32 - 1,
        k,
    };
    let mut recovered_out: Vec<Recommendation> = Vec::new();
    durable.recommend(&newest_durable, &mut out).expect("live newest user");
    recovered
        .recommend(&newest_durable, &mut recovered_out)
        .expect("recovered newest user");
    assert_eq!(out, recovered_out, "recovered top-K diverged from the live engine");
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).ok();
    eprintln!(
        "wal        : {:.0} durable batches/s vs {:.0} unlogged ({wal_overhead_pct:.1}% append overhead), {wal_bytes_per_record:.0} B/record, {wal_records} records; recovery == live (bitwise)",
        wal_bps[0],
        wal_bps[1],
    );
    // --- Cold-start load cost: v1 decode vs v2 map vs v2 heap fallback. -----
    // The zero-copy story in one number: how long until a fresh process can
    // serve its first request from a frozen artifact. The v1 path decodes a
    // serde payload into heap tables; the v2 path validates checksums and
    // maps; `CDRIB_NO_MMAP=1` prices the aligned-heap fallback of the same
    // container. Best-of-N so page-cache noise doesn't dominate.
    let cold_dir = std::env::temp_dir().join(format!("cdrib_serve_perf_cold_{seed}"));
    std::fs::create_dir_all(&cold_dir).expect("cold-start scratch dir");
    let v1_path = cold_dir.join("model.cdrb");
    let v2_path = cold_dir.join("serve.cdr2");
    model.save_file(&loaded_scenario, &v1_path).expect("write v1 artifact");
    cdrib_core::save_serve_v2_file(&model, &loaded_scenario, true, true, &v2_path).expect("write v2 artifact");
    let v2_artifact_bytes = std::fs::metadata(&v2_path).expect("v2 metadata").len();
    let cold_rounds = if quick { 3usize } else { 10 };
    let best_ms = |load: &mut dyn FnMut() -> Recommender| {
        let mut best = f64::INFINITY;
        for _ in 0..cold_rounds {
            let started = Instant::now();
            let engine = load();
            best = best.min(started.elapsed().as_secs_f64() * 1e3);
            drop(engine);
        }
        best
    };
    let cold_v1_decode_ms = best_ms(&mut || Recommender::from_artifact_file(&v1_path).expect("v1 cold load"));
    let cold_v2_map_ms = best_ms(&mut || Recommender::from_serve_v2_file(&v2_path).expect("v2 cold load"));
    std::env::set_var("CDRIB_NO_MMAP", "1");
    let cold_v2_heap_ms = best_ms(&mut || Recommender::from_serve_v2_file(&v2_path).expect("v2 heap cold load"));
    std::env::remove_var("CDRIB_NO_MMAP");
    // Parity gate: the mapped engine serves the decoded tables bitwise
    // (`tests/mmap_parity.rs` holds the full contract; this keeps the
    // benchmark honest about measuring the same model).
    let v1_engine = Recommender::from_artifact_file(&v1_path).expect("v1 reference");
    let v2_engine = Recommender::from_serve_v2_file(&v2_path).expect("v2 reference");
    assert!(v2_engine.is_mapped(), "cold-start v2 load must serve borrowed tables");
    assert_eq!(
        v1_engine.scorer().x_users,
        v2_engine.scorer().x_users,
        "v2 tables must match the v1 decode bitwise"
    );
    assert_eq!(v1_engine.scorer().y_items, v2_engine.scorer().y_items);
    drop((v1_engine, v2_engine));
    std::fs::remove_dir_all(&cold_dir).ok();
    let cold_map_speedup = cold_v1_decode_ms / cold_v2_map_ms;
    eprintln!(
        "cold start : v1 decode {cold_v1_decode_ms:.2} ms -> v2 map {cold_v2_map_ms:.2} ms ({cold_map_speedup:.1}x), heap fallback {cold_v2_heap_ms:.2} ms; artifacts {artifact_bytes} B v1 vs {v2_artifact_bytes} B v2"
    );

    eprintln!(
        "throughput : {recs_per_sec:.0} recommendations/s, {:.2}M candidate scores/s ({} requests/batch, {} threads)",
        scores_per_sec / 1e6,
        requests.len(),
        kernels::parallelism()
    );
    for (workers, rps) in &threads_sweep {
        eprintln!("  sweep    : {workers} worker(s) -> {rps:.0} recommendations/s");
    }
    eprintln!(
        "int8       : p50 {int8_p50:.1} us, {:.2}M candidate scores/s ({int8_speedup:.2}x f32), recall@{k} {int8_recall:.4}, exact-list rate {int8_exact_rate:.2}, tables {int8_table_bytes} B vs {f32_table_bytes} B f32 ({table_compression:.2}x smaller)",
        int8_scores_per_sec / 1e6,
    );
    eprintln!("allocations: {allocs_per_request:.2} steady-state allocs/request (must be 0)");
    assert_eq!(
        allocs_per_request, 0.0,
        "warm serving requests must not touch the allocator"
    );
    assert!(
        scores_per_sec >= 1e6,
        "serving must sustain at least 1M candidate scores/s, got {scores_per_sec:.0}"
    );

    let sweep_json = threads_sweep
        .iter()
        .map(|(workers, rps)| format!("{{\"workers\": {workers}, \"recommendations_per_sec\": {rps:.1}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_perf\",\n",
            "  \"methodology\": \"closed_loop\",\n",
            "  \"scenario\": \"game_video\",\n",
            "  \"scale\": \"{scale}\",\n",
            "  \"dim\": {dim},\n",
            "  \"train_epochs\": {train_epochs},\n",
            "  \"artifact_bytes\": {artifact_bytes},\n",
            "  \"catalogue_items_x\": {items_x},\n",
            "  \"catalogue_items_y\": {items_y},\n",
            "  \"k\": {k},\n",
            "  \"isa\": \"{isa}\",\n",
            "  \"threads\": {threads},\n",
            "  \"requests_per_batch\": {batch_requests},\n",
            "  \"candidates_per_request\": {candidates},\n",
            "  \"latency_us_p50\": {p50:.2},\n",
            "  \"latency_us_p99\": {p99:.2},\n",
            "  \"recommendations_per_sec\": {rps:.1},\n",
            "  \"candidate_scores_per_sec\": {sps:.0},\n",
            "  \"steady_state_allocs_per_request\": {allocs:.2},\n",
            "  \"heap_matches_full_sort\": true,\n",
            "  \"frozen_matches_tape_forward\": true,\n",
            "  \"threads_sweep\": [{sweep}],\n",
            "  \"int8\": {{\n",
            "    \"latency_us_p50\": {int8_p50:.2},\n",
            "    \"latency_us_p99\": {int8_p99:.2},\n",
            "    \"recommendations_per_sec\": {int8_rps:.1},\n",
            "    \"candidate_scores_per_sec\": {int8_sps:.0},\n",
            "    \"speedup_vs_f32\": {int8_speedup:.3},\n",
            "    \"ns_per_candidate_f32\": {ns_f32:.3},\n",
            "    \"ns_per_candidate_int8\": {ns_int8:.3},\n",
            "    \"table_bytes_f32\": {f32_table_bytes},\n",
            "    \"table_bytes_int8\": {int8_table_bytes},\n",
            "    \"table_compression\": {table_compression:.3},\n",
            "    \"recall_at_10_vs_f32\": {int8_recall:.4},\n",
            "    \"exact_list_rate_vs_f32\": {int8_exact_rate:.4},\n",
            "    \"steady_state_allocs_per_request\": {int8_allocs:.2},\n",
            "    \"delta_quant_matches_requantise\": true,\n",
            "    \"catalogue_scale\": {{\n",
            "      \"items\": {stress_items},\n",
            "      \"f32_scores_per_sec\": {stress_f32:.0},\n",
            "      \"int8_scores_per_sec\": {stress_int8:.0},\n",
            "      \"speedup_vs_f32\": {stress_speedup:.3}\n",
            "    }}\n",
            "  }},\n",
            "  \"delta_users_per_batch\": {delta_users},\n",
            "  \"delta_edges_per_user\": {delta_edges_per_user},\n",
            "  \"delta_batches_per_sec\": {delta_bps:.1},\n",
            "  \"delta_rows_reencoded_mean\": {delta_rows:.1},\n",
            "  \"delta_steady_state_allocs_per_batch\": {delta_allocs:.2},\n",
            "  \"delta_incremental_matches_rebuild\": true,\n",
            "  \"removal_users_per_batch\": {delta_users},\n",
            "  \"removal_batches_per_sec\": {removal_bps:.1},\n",
            "  \"removal_edges_retracted\": {removal_edges},\n",
            "  \"cold_start\": {{\n",
            "    \"v1_artifact_bytes\": {artifact_bytes},\n",
            "    \"v2_artifact_bytes\": {v2_artifact_bytes},\n",
            "    \"v1_decode_ms\": {cold_v1_decode_ms:.3},\n",
            "    \"v2_map_ms\": {cold_v2_map_ms:.3},\n",
            "    \"v2_heap_fallback_ms\": {cold_v2_heap_ms:.3},\n",
            "    \"map_speedup_vs_decode\": {cold_map_speedup:.3},\n",
            "    \"v2_matches_v1_bitwise\": true\n",
            "  }},\n",
            "  \"wal\": {{\n",
            "    \"durable_batches_per_sec\": {wal_durable_bps:.1},\n",
            "    \"unlogged_batches_per_sec\": {wal_unlogged_bps:.1},\n",
            "    \"append_overhead_pct\": {wal_overhead_pct:.2},\n",
            "    \"log_bytes_per_record\": {wal_bytes_per_record:.1},\n",
            "    \"records_appended\": {wal_records},\n",
            "    \"recovery_matches_live\": true\n",
            "  }}\n",
            "}}\n"
        ),
        scale = scale_name,
        dim = config.dim,
        train_epochs = train_epochs,
        artifact_bytes = artifact_bytes,
        items_x = loaded_scenario.x.n_items,
        items_y = loaded_scenario.y.n_items,
        k = k,
        isa = kernels::active_isa(),
        threads = kernels::parallelism(),
        batch_requests = requests.len(),
        candidates = candidates_per_request,
        p50 = p50,
        p99 = p99,
        rps = recs_per_sec,
        sps = scores_per_sec,
        allocs = allocs_per_request,
        sweep = sweep_json,
        int8_p50 = int8_p50,
        int8_p99 = int8_p99,
        int8_rps = int8_recs_per_sec,
        int8_sps = int8_scores_per_sec,
        int8_speedup = int8_speedup,
        ns_f32 = 1e9 / scores_per_sec,
        ns_int8 = 1e9 / int8_scores_per_sec,
        f32_table_bytes = f32_table_bytes,
        int8_table_bytes = int8_table_bytes,
        table_compression = table_compression,
        int8_recall = int8_recall,
        int8_exact_rate = int8_exact_rate,
        int8_allocs = int8_allocs_per_request,
        stress_items = stress_items,
        stress_f32 = stress_sps[0],
        stress_int8 = stress_sps[1],
        stress_speedup = stress_speedup,
        delta_users = users_per_batch,
        delta_edges_per_user = edges_per_user,
        delta_bps = delta_batches_per_sec,
        delta_rows = delta_rows_mean,
        delta_allocs = delta_allocs_per_batch,
        removal_bps = removal_batches_per_sec,
        removal_edges = removal_edges_retracted,
        v2_artifact_bytes = v2_artifact_bytes,
        cold_v1_decode_ms = cold_v1_decode_ms,
        cold_v2_map_ms = cold_v2_map_ms,
        cold_v2_heap_ms = cold_v2_heap_ms,
        cold_map_speedup = cold_map_speedup,
        wal_durable_bps = wal_bps[0],
        wal_unlogged_bps = wal_bps[1],
        wal_overhead_pct = wal_overhead_pct,
        wal_bytes_per_record = wal_bytes_per_record,
        wal_records = wal_records,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
