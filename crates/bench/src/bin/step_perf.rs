//! Training-step performance and allocation benchmark.
//!
//! Measures epoch wall time of the CDRIB training step on a synthetic preset
//! scenario in two modes over otherwise identical work:
//!
//! * **fresh** — a new [`Tape`] per step (the pre-pooling behaviour: every
//!   node value and gradient buffer is a heap allocation);
//! * **pooled** — one persistent tape per run with [`Tape::reset`] between
//!   steps (the production path in `cdrib-core`): warm steps draw all tensor
//!   storage from the tape's [`BufferPool`](cdrib_tensor::BufferPool).
//!
//! The binary installs the counting global allocator from
//! `cdrib_tensor::alloc_track`, so it also reports allocator requests per
//! epoch for both modes, plus the steady-state allocation count of a small
//! toy training loop whose entire step (forward, backward, Adam) runs on the
//! pooled stack — that count must be zero, and the `alloc_regression`
//! integration test enforces it.
//!
//! Results are written to `BENCH_step.json` (override with `--out`). Usage:
//!
//! ```text
//! step_perf [--scale tiny|small] [--epochs N] [--warmup N] [--quick] [--out PATH]
//! ```

use cdrib_bench::Args;
use cdrib_core::{CdribConfig, CdribModel};
use cdrib_data::{build_preset, Direction, EpochBatches, Scale, ScenarioKind};
use cdrib_eval::{evaluate_both_directions, EvalConfig, EvalSplit};
use cdrib_tensor::alloc_track::{allocation_count, CountingAlloc};
use cdrib_tensor::rng::component_rng;
use cdrib_tensor::{kernels, Adam, Optimizer, ParamSet, Tape, Tensor};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Wall time and allocator traffic of one measured mode.
struct ModeResult {
    epoch_ms_median: f64,
    allocs_per_epoch: u64,
}

fn run_mode(
    pooled: bool,
    scenario: &cdrib_data::CdrScenario,
    config: &CdribConfig,
    epochs: usize,
    warmup: usize,
) -> ModeResult {
    let mut model = CdribModel::new(config, scenario).expect("model construction");
    let mut opt = Adam::new(config.learning_rate, 0.9, 0.999, 1e-8, config.l2_weight);
    let mut rng = component_rng(config.seed, "step-perf");
    let mut tape = Tape::new();
    let (mut x_epoch, mut y_epoch) = (EpochBatches::new(), EpochBatches::new());

    let mut run_epoch = |tape: &mut Tape, model: &mut CdribModel| {
        // Pooled mode is the production path: batch storage is refilled in
        // place. Fresh mode discards the storage first, so every batch Vec
        // is reallocated — the pre-pooling behaviour, with identical
        // sampling work either way.
        if !pooled {
            x_epoch = EpochBatches::new();
            y_epoch = EpochBatches::new();
        }
        model
            .make_batches_into(scenario, &mut rng, &mut x_epoch, &mut y_epoch)
            .expect("batches");
        for (xb, yb) in x_epoch.iter().zip(y_epoch.iter()) {
            model.params_mut().zero_grad();
            if pooled {
                tape.reset();
            } else {
                *tape = Tape::new();
            }
            let (loss, _) = model.loss(tape, xb, yb, &mut rng).expect("loss");
            let value = tape.backward(loss, model.params_mut()).expect("backward");
            assert!(value.is_finite(), "loss diverged during the benchmark");
            model.params_mut().clip_grad_norm(20.0);
            opt.step(model.params_mut()).expect("optimizer step");
        }
    };

    for _ in 0..warmup {
        run_epoch(&mut tape, &mut model);
    }
    let allocs_before = allocation_count();
    let mut times = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let started = Instant::now();
        run_epoch(&mut tape, &mut model);
        times.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let allocs = allocation_count() - allocs_before;
    // Median per-epoch time: robust against the frequency spikes of shared
    // CI boxes, and the same statistic for both modes.
    times.sort_by(f64::total_cmp);
    ModeResult {
        epoch_ms_median: times[times.len() / 2],
        allocs_per_epoch: allocs / epochs as u64,
    }
}

/// A dense toy training loop whose steady state must be allocation-free:
/// constants, matmul, LeakyReLU, row-wise dot, BCE, L2 — backward — Adam.
/// Returns allocator requests per epoch after a 2-epoch warm-up.
fn toy_steady_state_allocs(epochs: usize) -> u64 {
    let mut rng = component_rng(11, "toy-alloc");
    let x = cdrib_tensor::rng::normal_tensor(&mut rng, 32, 16, 1.0);
    let targets = {
        let mut t = Tensor::zeros(32, 1);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 2) as f32;
        }
        t
    };
    let mut params = ParamSet::new();
    let w1 = params
        .add("w1", cdrib_tensor::rng::normal_tensor(&mut rng, 16, 8, 0.3))
        .expect("fresh set");
    let b = params
        .add("b", cdrib_tensor::rng::normal_tensor(&mut rng, 1, 8, 0.3))
        .expect("fresh set");
    let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.001);
    let mut tape = Tape::new();
    let steps_per_epoch = 4;

    let mut run_epoch = |tape: &mut Tape, params: &mut ParamSet| {
        for _ in 0..steps_per_epoch {
            params.zero_grad();
            tape.reset();
            let xv = tape.constant_copy(&x);
            let w1v = tape.param(params, w1);
            let bv = tape.param(params, b);
            let h = tape.matmul(xv, w1v).expect("matmul");
            let h = tape.add_row_broadcast(h, bv).expect("bias");
            let h = tape.leaky_relu(h, 0.1).expect("leaky");
            let dots = tape.rowwise_dot(h, h).expect("dots");
            let rec = tape.bce_with_logits_copy(dots, &targets).expect("bce");
            let reg = tape.sum_squares(w1v).expect("reg");
            let reg = tape.scale(reg, 0.01).expect("scale");
            let loss = tape.add(rec, reg).expect("add");
            tape.backward(loss, params).expect("backward");
            params.clip_grad_norm(20.0);
            opt.step(params).expect("adam");
        }
    };

    for _ in 0..2 {
        run_epoch(&mut tape, &mut params);
    }
    let before = allocation_count();
    for _ in 0..epochs {
        run_epoch(&mut tape, &mut params);
    }
    (allocation_count() - before) / epochs as u64
}

/// Throughput of the leave-one-out evaluation hot path.
struct EvalPerf {
    n_negatives: usize,
    cases: usize,
    cases_per_sec: f64,
    scalar_cases_per_sec: f64,
    speedup: f64,
    scoring_speedup: f64,
}

/// The pre-PR evaluation loop, reproduced verbatim as the baseline: per-case
/// rejection sampling with a fresh `HashSet` (which degenerates towards a
/// coupon-collector loop whenever `n_negatives` approaches the number of
/// non-interacted items), per-item `has_edge` binary searches in the
/// exhaustive branch, and an allocating scalar per-pair scoring loop.
fn legacy_eval(
    scorer: &cdrib_eval::EmbeddingScorer,
    scenario: &cdrib_data::CdrScenario,
    direction: Direction,
    config: &EvalConfig,
) -> usize {
    use cdrib_eval::rank_of_positive;
    use rand::Rng;
    let cases = &scenario.cold_start(direction).test;
    let target = scenario.domain(direction.target);
    let n_items = target.n_items;
    let mut rng = cdrib_tensor::rng::component_rng(config.seed, "eval-negatives");
    let mut n_cases = 0usize;
    let mut candidates: Vec<u32> = Vec::with_capacity(config.n_negatives + 1);
    let mut scores: Vec<f32> = Vec::new();
    let mut rank_sink = 0usize;
    for case in cases.iter() {
        candidates.clear();
        candidates.push(case.item);
        let available = n_items - target.full.user_degree(case.user as usize);
        if available <= config.n_negatives {
            for cand in 0..n_items as u32 {
                if cand != case.item && !target.full.has_edge(case.user as usize, cand as usize) {
                    candidates.push(cand);
                }
            }
        } else {
            let mut seen = std::collections::HashSet::with_capacity(config.n_negatives + 1);
            seen.insert(case.item);
            while candidates.len() < config.n_negatives + 1 {
                let cand = rng.gen_range(0..n_items) as u32;
                if seen.contains(&cand) || target.full.has_edge(case.user as usize, cand as usize) {
                    continue;
                }
                seen.insert(cand);
                candidates.push(cand);
            }
        }
        scores.resize(candidates.len(), 0.0);
        scorer.score_items_scalar_into(direction, case.user, &candidates, &mut scores[..candidates.len()]);
        rank_sink += rank_of_positive(scores[0], &scores[1..candidates.len()]);
        n_cases += 1;
    }
    std::hint::black_box(rank_sink);
    n_cases
}

/// Times the full two-direction cold-start evaluation three ways: the
/// batched kernel-backed pipeline, the faithful pre-PR loop ([`legacy_eval`];
/// this is the "scalar path" baseline), and the new pipeline driven by an
/// allocating scalar closure scorer (isolating the scoring speedup from the
/// sampling fixes). Reports cases/s and ratios; `repeats` medians out CI-box
/// noise.
fn run_eval_perf(scenario: &cdrib_data::CdrScenario, config: &CdribConfig, repeats: usize) -> EvalPerf {
    let model = CdribModel::new(config, scenario).expect("model construction");
    let scorer = model.infer_embeddings().expect("embeddings").into_scorer();
    // The paper's 999 negatives when the catalogue allows it, capped so both
    // directions stay valid on the preset scales.
    let min_items = scenario.x.n_items.min(scenario.y.n_items);
    let eval_cfg = EvalConfig {
        n_negatives: 999.min(min_items - 1),
        seed: 17,
        max_cases: None,
    };

    // Scalar closure scorer over the same tables (the pre-batching scoring
    // loop), run through the new sampling pipeline.
    let scalar_scorer = |d: Direction, u: u32, items: &[u32]| -> Vec<f32> { scorer.score_items_scalar(d, u, items) };

    let mut cases = 0usize;
    let (mut batched_times, mut legacy_times, mut scalar_times) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let (x2y, y2x) = evaluate_both_directions(&scorer, scenario, EvalSplit::Test, &eval_cfg).expect("batched eval");
        batched_times.push(started.elapsed().as_secs_f64());
        cases = x2y.n_cases() + y2x.n_cases();

        let started = Instant::now();
        let n = legacy_eval(&scorer, scenario, Direction::X_TO_Y, &eval_cfg)
            + legacy_eval(&scorer, scenario, Direction::Y_TO_X, &eval_cfg);
        legacy_times.push(started.elapsed().as_secs_f64());
        assert_eq!(n, cases, "legacy path must evaluate the same cases");

        let started = Instant::now();
        let _ = evaluate_both_directions(&scalar_scorer, scenario, EvalSplit::Test, &eval_cfg).expect("scalar eval");
        scalar_times.push(started.elapsed().as_secs_f64());
    }
    batched_times.sort_by(f64::total_cmp);
    legacy_times.sort_by(f64::total_cmp);
    scalar_times.sort_by(f64::total_cmp);
    let batched = batched_times[batched_times.len() / 2];
    let legacy = legacy_times[legacy_times.len() / 2];
    let scalar = scalar_times[scalar_times.len() / 2];
    EvalPerf {
        n_negatives: eval_cfg.n_negatives,
        cases,
        cases_per_sec: cases as f64 / batched,
        scalar_cases_per_sec: cases as f64 / legacy,
        speedup: legacy / batched,
        scoring_speedup: scalar / batched,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.get("quick").is_some();
    let scale = match args.get("scale").unwrap_or("tiny") {
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => Scale::Tiny,
    };
    // Echo the *normalized* scale so BENCH_step.json can never claim a
    // scale that was not actually run (an unknown value falls back to tiny).
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Full => "full",
        _ => "tiny",
    };
    let epochs: usize = args.get_or("epochs", if quick { 6 } else { 20 });
    let warmup: usize = args.get_or("warmup", 2);
    let out_path = args.get("out").unwrap_or("BENCH_step.json").to_string();
    let seed: u64 = args.get_or("seed", 42);

    let scenario = build_preset(ScenarioKind::GameVideo, scale, seed).expect("preset scenario");
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        batches_per_epoch: 2,
        eval_every: 0,
        patience: 0,
        seed,
        ..CdribConfig::default()
    };

    eprintln!(
        "step_perf: scenario game_video/{scale_name}, {} + {} edges, dim {}, {} epochs (+{} warm-up), isa {}, {} thread(s)",
        scenario.x.train.n_edges(),
        scenario.y.train.n_edges(),
        config.dim,
        epochs,
        warmup,
        kernels::active_isa(),
        kernels::parallelism(),
    );

    let fresh = run_mode(false, &scenario, &config, epochs, warmup);
    let pooled = run_mode(true, &scenario, &config, epochs, warmup);
    let speedup = fresh.epoch_ms_median / pooled.epoch_ms_median;
    let toy_allocs = toy_steady_state_allocs(3);
    let eval = run_eval_perf(&scenario, &config, if quick { 2 } else { 5 });

    eprintln!(
        "fresh tape : {:8.2} ms/epoch, {:6} allocs/epoch",
        fresh.epoch_ms_median, fresh.allocs_per_epoch
    );
    eprintln!(
        "pooled tape: {:8.2} ms/epoch, {:6} allocs/epoch  ({speedup:.2}x)",
        pooled.epoch_ms_median, pooled.allocs_per_epoch
    );
    eprintln!("toy loop   : {toy_allocs} steady-state allocs/epoch");
    eprintln!(
        "evaluation : {:8.0} cases/s batched vs {:.0} cases/s pre-PR scalar path ({:.2}x; scoring alone {:.2}x; {} cases x {} negatives)",
        eval.cases_per_sec, eval.scalar_cases_per_sec, eval.speedup, eval.scoring_speedup, eval.cases, eval.n_negatives
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"step_perf\",\n",
            "  \"scenario\": \"game_video\",\n",
            "  \"scale\": \"{scale}\",\n",
            "  \"dim\": {dim},\n",
            "  \"layers\": {layers},\n",
            "  \"batches_per_epoch\": {bpe},\n",
            "  \"edges\": {edges},\n",
            "  \"warmup_epochs\": {warmup},\n",
            "  \"measured_epochs\": {epochs},\n",
            "  \"isa\": \"{isa}\",\n",
            "  \"threads\": {threads},\n",
            "  \"fresh_tape\": {{ \"epoch_ms_median\": {fresh_ms:.3}, \"allocs_per_epoch\": {fresh_allocs} }},\n",
            "  \"pooled_tape\": {{ \"epoch_ms_median\": {pooled_ms:.3}, \"allocs_per_epoch\": {pooled_allocs} }},\n",
            "  \"speedup_pooled_vs_fresh\": {speedup:.3},\n",
            "  \"toy_loop_steady_state_allocs_per_epoch\": {toy_allocs},\n",
            "  \"eval_cases\": {eval_cases},\n",
            "  \"eval_negatives\": {eval_negatives},\n",
            "  \"eval_cases_per_sec\": {eval_cps:.1},\n",
            "  \"eval_scalar_cases_per_sec\": {eval_scalar_cps:.1},\n",
            "  \"eval_speedup_batched_vs_scalar\": {eval_speedup:.3},\n",
            "  \"eval_scoring_speedup\": {eval_scoring_speedup:.3}\n",
            "}}\n"
        ),
        scale = scale_name,
        dim = config.dim,
        layers = config.layers,
        bpe = config.batches_per_epoch,
        edges = scenario.x.train.n_edges() + scenario.y.train.n_edges(),
        warmup = warmup,
        epochs = epochs,
        isa = kernels::active_isa(),
        threads = kernels::parallelism(),
        fresh_ms = fresh.epoch_ms_median,
        fresh_allocs = fresh.allocs_per_epoch,
        pooled_ms = pooled.epoch_ms_median,
        pooled_allocs = pooled.allocs_per_epoch,
        speedup = speedup,
        toy_allocs = toy_allocs,
        eval_cases = eval.cases,
        eval_negatives = eval.n_negatives,
        eval_cps = eval.cases_per_sec,
        eval_scalar_cps = eval.scalar_cases_per_sec,
        eval_speedup = eval.speedup,
        eval_scoring_speedup = eval.scoring_speedup,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_step.json");
    eprintln!("wrote {out_path}");
}
