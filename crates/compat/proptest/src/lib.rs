//! In-tree stand-in for [proptest](https://docs.rs/proptest) so the
//! workspace's property-based tests build and run offline.
//!
//! Implements the subset the test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `proptest::collection::vec`, [`ProptestConfig`], and the [`proptest!`]
//! macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//! - generation is deterministic: case `i` of test `t` always sees the same
//!   inputs (seeded from the test name and case index), so failures
//!   reproduce without a persistence file;
//! - there is no shrinking — the failing case prints its case index instead.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic RNG used for input generation (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name keeps seeding stable across compilers/runs.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter created by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as f64 - self.start as f64;
                (self.start as f64 + rng.unit_f64() * span) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`]: a fixed `usize` or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.generate(rng)
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the property tests need, for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn` runs its body once per case with
/// inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let run = || -> () { $body };
                // A panicking case reports which deterministic case failed.
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest stand-in: {} failed at case {case}/{} (deterministic, no shrinking)",
                        stringify!($name),
                        config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
