//! The versioned on-disk envelope shared by every model artifact.
//!
//! Training and serving are separate processes in the target architecture:
//! a trainer freezes its model into an *artifact*, a serving process loads
//! it (possibly much later, possibly built from a newer source tree) and
//! answers top-K queries. The envelope makes that hand-off safe:
//!
//! ```text
//! [ magic "CDRB" | kind len + kind bytes | format version u32
//!   | payload len u64 | payload checksum u64 | payload bytes ]
//! ```
//!
//! * **magic** rejects files that are not artifacts at all;
//! * **kind** (e.g. `cdrib.model`, `cdrib.baseline`) rejects artifacts of
//!   the wrong type before any payload decoding;
//! * **version** is per-kind and bumped on any payload layout change, so a
//!   reader never misinterprets old bytes (the serde stand-in's binary
//!   format has no self-description to fall back on);
//! * **checksum** (FNV-1a over the payload) rejects bit rot and truncation
//!   with a typed error instead of a garbled model.
//!
//! Payloads themselves are produced with [`serde::to_bytes`] by the owning
//! crate (`cdrib-core` for CDRIB models, `cdrib-baselines` for baseline
//! scorers).

use std::fmt;
use std::path::Path;

/// Leading magic bytes of every artifact file.
pub const MAGIC: [u8; 4] = *b"CDRB";

/// Errors raised while encoding or decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The input does not start with the artifact magic.
    BadMagic,
    /// The artifact holds a different kind of payload.
    WrongKind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind recorded in the artifact.
        found: String,
    },
    /// The artifact was written with an unsupported format version.
    UnsupportedVersion {
        /// Artifact kind.
        kind: String,
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload checksum does not match (bit rot, truncation, partial
    /// write).
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: u64,
        /// Checksum of the actual payload bytes.
        actual: u64,
    },
    /// The envelope itself is shorter than its headers claim.
    Truncated,
    /// The payload failed to decode.
    Decode(serde::Error),
    /// The decoded payload is internally inconsistent with the loading
    /// context (e.g. parameter names or shapes that do not match the model
    /// the artifact claims to be).
    Mismatch {
        /// What disagreed.
        detail: String,
    },
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a CDRB artifact (bad magic)"),
            ArtifactError::WrongKind { expected, found } => {
                write!(f, "artifact kind mismatch: expected `{expected}`, found `{found}`")
            }
            ArtifactError::UnsupportedVersion { kind, found, supported } => write!(
                f,
                "unsupported `{kind}` artifact version {found} (this build supports {supported})"
            ),
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact payload corrupted: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            ArtifactError::Truncated => write!(f, "artifact truncated before the payload ended"),
            ArtifactError::Decode(e) => write!(f, "artifact payload failed to decode: {e}"),
            ArtifactError::Mismatch { detail } => write!(f, "artifact payload inconsistent: {detail}"),
            ArtifactError::Io(e) => write!(f, "artifact i/o failed: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Decode(e) => Some(e),
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde::Error> for ArtifactError {
    fn from(e: serde::Error) -> Self {
        ArtifactError::Decode(e)
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a over the payload: not cryptographic, but a reliable detector of
/// flipped bits and truncation, dependency-free and fast enough to be noise
/// next to the payload encode itself.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps an encoded payload in the versioned envelope.
pub fn encode(kind: &str, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + kind.len() + 32);
    out.extend_from_slice(&MAGIC);
    serde::Serialize::serialize(kind, &mut out);
    serde::Serialize::serialize(&version, &mut out);
    serde::Serialize::serialize(&(payload.len() as u64), &mut out);
    serde::Serialize::serialize(&checksum(payload), &mut out);
    out.extend_from_slice(payload);
    out
}

/// Validates the envelope and returns the payload slice.
///
/// `kind` and `version` are what the caller supports; any disagreement is a
/// typed [`ArtifactError`], never a silent misread.
pub fn decode<'a>(bytes: &'a [u8], kind: &str, version: u32) -> Result<&'a [u8], ArtifactError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let mut input = &bytes[MAGIC.len()..];
    let found_kind: String = serde::Deserialize::deserialize(&mut input)?;
    if found_kind != kind {
        return Err(ArtifactError::WrongKind {
            expected: kind.to_string(),
            found: found_kind,
        });
    }
    let found_version: u32 = serde::Deserialize::deserialize(&mut input)?;
    if found_version != version {
        return Err(ArtifactError::UnsupportedVersion {
            kind: found_kind,
            found: found_version,
            supported: version,
        });
    }
    let payload_len: u64 = serde::Deserialize::deserialize(&mut input)?;
    let expected: u64 = serde::Deserialize::deserialize(&mut input)?;
    if (input.len() as u64) < payload_len {
        return Err(ArtifactError::Truncated);
    }
    let payload = &input[..payload_len as usize];
    let actual = checksum(payload);
    if actual != expected {
        return Err(ArtifactError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// Writes an enveloped artifact to a file.
pub fn write_file(path: impl AsRef<Path>, kind: &str, version: u32, payload: &[u8]) -> Result<(), ArtifactError> {
    Ok(std::fs::write(path, encode(kind, version, payload))?)
}

/// Reads an artifact file and returns its validated payload.
pub fn read_file(path: impl AsRef<Path>, kind: &str, version: u32) -> Result<Vec<u8>, ArtifactError> {
    let bytes = std::fs::read(path)?;
    Ok(decode(&bytes, kind, version)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_kind_checks() {
        let payload = serde::to_bytes(&vec![1.5f32, -2.0, 3.25]);
        let bytes = encode("test.kind", 3, &payload);
        let back = decode(&bytes, "test.kind", 3).unwrap();
        assert_eq!(back, &payload[..]);
        let values: Vec<f32> = serde::from_bytes(back).unwrap();
        assert_eq!(values, vec![1.5, -2.0, 3.25]);

        assert!(matches!(
            decode(&bytes, "other.kind", 3),
            Err(ArtifactError::WrongKind { .. })
        ));
        assert!(matches!(
            decode(&bytes, "test.kind", 4),
            Err(ArtifactError::UnsupportedVersion {
                found: 3,
                supported: 4,
                ..
            })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let payload = serde::to_bytes(&String::from("model weights"));
        let bytes = encode("test.kind", 1, &payload);
        // Bad magic.
        assert!(matches!(decode(b"nope", "test.kind", 1), Err(ArtifactError::BadMagic)));
        // Every single-bit flip in the payload region must be caught.
        let payload_start = bytes.len() - payload.len();
        for offset in [payload_start, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x40;
            assert!(
                matches!(
                    decode(&corrupted, "test.kind", 1),
                    Err(ArtifactError::ChecksumMismatch { .. })
                ),
                "flip at {offset} must be detected"
            );
        }
        // Truncation.
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3], "test.kind", 1),
            Err(ArtifactError::Truncated)
        ));
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("cdrib-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("envelope.cdrb");
        write_file(&path, "test.file", 2, b"abc").unwrap();
        assert_eq!(read_file(&path, "test.file", 2).unwrap(), b"abc");
        assert!(matches!(
            read_file(dir.join("missing.cdrb"), "test.file", 2),
            Err(ArtifactError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
