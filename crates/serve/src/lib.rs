//! # cdrib-serve
//!
//! The online top-K recommendation subsystem of the CDRIB reproduction —
//! the serving half of the train/serve split. A trainer freezes its model
//! into a versioned artifact (`cdrib_core::artifact`); this crate loads the
//! frozen encoder output (or any baseline's tables) and answers the query
//! the paper is actually for: *recommend K target-domain items to this
//! cold-start user* (cf. CATN's online cold-start retrieval framing,
//! SIGIR 2020).
//!
//! Serving path per request: chunked full-catalogue scoring through the
//! shared SIMD candidate kernels → sorted-merge filtering of already-seen
//! items against the bipartite interaction graph → bounded binary-heap
//! top-K selection. Warm requests are allocation-free; batches fan out over
//! `std::thread::scope` workers behind the default-on `parallel` feature.
//!
//! ## Online updates
//!
//! An engine built with [`Recommender::from_inference_online`] additionally
//! ingests interaction deltas at serving time
//! ([`Recommender::apply_delta`]): new users, items and edges are applied to
//! the seen-item graphs in place, only the entities whose propagated
//! neighbourhood changed are re-encoded through the frozen VBGE mean path,
//! and the cached tables are patched behind a copy-on-write epoch swap (see
//! [`delta`]). The result is bitwise identical to re-freezing on the
//! post-delta graph — pinned by the differential harness in
//! `tests/delta_parity.rs`.
//!
//! ## Durability
//!
//! An engine opened with [`Recommender::recover`] additionally persists
//! every accepted delta to a checksummed, sequence-numbered write-ahead log
//! *before* the epoch swap commits (see [`wal`]). On restart, `recover`
//! replays the log over the frozen base artifact and reconstructs the exact
//! pre-crash state; damaged log tails are truncated and quarantined rather
//! than refusing to start, and [`Recommender::compact`] folds the log into
//! a checkpoint artifact via atomic renames. The fault-injection harness in
//! `tests/wal_recovery.rs` drives a crash-point matrix over this path.
//!
//! ## Quick example
//!
//! ```
//! use cdrib_core::{CdribConfig, CdribModel};
//! use cdrib_data::{build_preset, Direction, Scale, ScenarioKind};
//! use cdrib_serve::{Recommender, Request};
//!
//! let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 7).unwrap();
//! let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
//! // Freeze to artifact bytes and serve from the frozen snapshot.
//! let artifact = model.save_bytes(&scenario);
//! let mut recommender = Recommender::from_artifact_bytes(&artifact).unwrap();
//! let user = scenario.cold_x_to_y.test_users[0];
//! let recs = recommender
//!     .recommend_vec(&Request { direction: Direction::X_TO_Y, user, k: 10 })
//!     .unwrap();
//! assert_eq!(recs.len(), 10);
//! assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod net;
pub mod proto;
pub mod recommender;
mod seen;
pub mod topk;
pub mod wal;

pub use delta::DeltaOutcome;
pub use error::{Result, ServeError};
pub use net::{Client, Server, ServerConfig, StatsSnapshot};
pub use proto::{ClientMsg, FrameReader, ProtoError, ServerMsg, MAX_FRAME_BODY, PROTO_VERSION};
pub use recommender::{Recommender, Request, ScoringPrecision};
pub use topk::{ranks_above, Recommendation, TopK};
pub use wal::{CompactionReport, DeltaWal, RecoveryReport, RetryPolicy, WalError};

#[cfg(test)]
mod tests {
    use super::*;
    use cdrib_core::{CdribConfig, CdribModel, InferenceModel};
    use cdrib_data::{build_preset, CdrScenario, Direction, DomainId, Scale, ScenarioKind};
    use cdrib_eval::EmbeddingScorer;
    use cdrib_graph::BipartiteGraph;
    use cdrib_tensor::rng::{component_rng, normal_tensor};
    use cdrib_tensor::Tensor;
    use rand::Rng;

    /// A small random serving setup with deliberately tie-heavy scores
    /// (embedding values quantised to a coarse grid).
    fn random_setup(seed: u64, n_users: usize, n_items: usize, dim: usize) -> Recommender {
        let mut rng = component_rng(seed, "serve-tests");
        let quantise = |t: Tensor| t.map(|v| (v * 4.0).round() / 4.0);
        let tables = |rng: &mut rand::rngs::StdRng, rows: usize| quantise(normal_tensor(rng, rows, dim, 0.5));
        let x_users = tables(&mut rng, n_users);
        let x_items = tables(&mut rng, n_items);
        let y_users = tables(&mut rng, n_users);
        let y_items = tables(&mut rng, n_items);
        let mut edges_x = Vec::new();
        let mut edges_y = Vec::new();
        for u in 0..n_users {
            for _ in 0..rng.gen_range(0..5) {
                edges_x.push((u, rng.gen_range(0..n_items)));
            }
            for _ in 0..rng.gen_range(0..5) {
                edges_y.push((u, rng.gen_range(0..n_items)));
            }
        }
        let seen_x = BipartiteGraph::new(n_users, n_items, &edges_x).unwrap();
        let seen_y = BipartiteGraph::new(n_users, n_items, &edges_y).unwrap();
        Recommender::new(EmbeddingScorer::dot(x_users, x_items, y_users, y_items), seen_x, seen_y).unwrap()
    }

    #[test]
    fn heap_selection_matches_full_sort_exactly() {
        let mut rec = random_setup(3, 40, 700, 8);
        let mut out = Vec::new();
        for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
            for user in 0..40u32 {
                for k in [1usize, 10, 699, 700, 2000] {
                    let request = Request { direction, user, k };
                    rec.recommend(&request, &mut out).unwrap();
                    let reference = rec.recommend_full_sort(&request).unwrap();
                    assert_eq!(out, reference, "direction={direction:?} user={user} k={k}");
                }
            }
        }
    }

    #[test]
    fn seen_items_are_filtered() {
        let mut rec = random_setup(11, 30, 200, 8);
        let mut out = Vec::new();
        for user in 0..30u32 {
            rec.recommend(
                &Request {
                    direction: Direction::X_TO_Y,
                    user,
                    k: 200,
                },
                &mut out,
            )
            .unwrap();
            for r in &out {
                assert!(
                    !rec.seen_graph(DomainId::Y).has_edge(user as usize, r.item as usize),
                    "user {user} was recommended already-seen item {}",
                    r.item
                );
            }
            // Everything unseen must be present when k covers the catalogue.
            let seen_count = rec.seen_graph(DomainId::Y).user_degree(user as usize);
            assert_eq!(out.len(), 200 - seen_count);
        }
    }

    #[test]
    fn batch_matches_single_requests() {
        let mut rec = random_setup(7, 25, 300, 16);
        let requests: Vec<Request> = (0..25u32)
            .flat_map(|user| {
                [
                    Request {
                        direction: Direction::X_TO_Y,
                        user,
                        k: 7,
                    },
                    Request {
                        direction: Direction::Y_TO_X,
                        user,
                        k: 13,
                    },
                ]
            })
            .collect();
        let mut responses = Vec::new();
        rec.recommend_batch(&requests, &mut responses).unwrap();
        assert_eq!(responses.len(), requests.len());
        let mut single = Vec::new();
        for (request, batched) in requests.iter().zip(responses.iter()) {
            rec.recommend(request, &mut single).unwrap();
            assert_eq!(&single, batched);
        }
        // Batch buffers are reused across calls without changing results.
        let snapshot = responses.clone();
        rec.recommend_batch(&requests, &mut responses).unwrap();
        assert_eq!(responses, snapshot);
    }

    #[test]
    fn source_only_users_serve_without_a_target_row() {
        // Domains have unequal user counts: users in [n_target, n_source)
        // exist only in the source domain. They are valid requesters (their
        // user row exists where it is read from) and simply have no seen
        // list in the target graph — the request must succeed and match the
        // full-sort reference, not index out of the target graph.
        let mut rng = component_rng(23, "asymmetric");
        let dim = 6;
        let (n_x_users, n_y_users) = (12usize, 5usize);
        let (n_x_items, n_y_items) = (40usize, 30usize);
        let scorer = EmbeddingScorer::dot(
            normal_tensor(&mut rng, n_x_users, dim, 0.5),
            normal_tensor(&mut rng, n_x_items, dim, 0.5),
            normal_tensor(&mut rng, n_y_users, dim, 0.5),
            normal_tensor(&mut rng, n_y_items, dim, 0.5),
        );
        let seen_x = BipartiteGraph::new(n_x_users, n_x_items, &[(0, 1), (7, 2)]).unwrap();
        let seen_y = BipartiteGraph::new(n_y_users, n_y_items, &[(0, 3), (4, 9)]).unwrap();
        let mut rec = Recommender::new(scorer, seen_x, seen_y).unwrap();
        let mut out = Vec::new();
        for user in 0..n_x_users as u32 {
            let request = Request {
                direction: Direction::X_TO_Y,
                user,
                k: 8,
            };
            rec.recommend(&request, &mut out).unwrap();
            assert_eq!(out, rec.recommend_full_sort(&request).unwrap(), "user {user}");
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    fn request_validation() {
        let mut rec = random_setup(5, 10, 50, 4);
        let mut out = Vec::new();
        let err = rec.recommend(
            &Request {
                direction: Direction::X_TO_Y,
                user: 10,
                k: 5,
            },
            &mut out,
        );
        assert!(matches!(err, Err(ServeError::UserOutOfRange { user: 10, bound: 10 })));
        // k = 0 is a valid no-op request.
        rec.recommend(
            &Request {
                direction: Direction::X_TO_Y,
                user: 0,
                k: 0,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
        // Batch propagates worker errors.
        let bad_batch = vec![
            Request {
                direction: Direction::X_TO_Y,
                user: 0,
                k: 3,
            };
            4
        ]
        .into_iter()
        .chain([Request {
            direction: Direction::Y_TO_X,
            user: 99,
            k: 3,
        }])
        .collect::<Vec<_>>();
        let mut responses = Vec::new();
        assert!(matches!(
            rec.recommend_batch(&bad_batch, &mut responses),
            Err(ServeError::UserOutOfRange { user: 99, .. })
        ));
    }

    #[test]
    fn construction_rejects_inconsistent_tables() {
        let scorer = EmbeddingScorer::dot(
            Tensor::ones(3, 4),
            Tensor::ones(5, 4),
            Tensor::ones(3, 4),
            Tensor::ones(6, 4),
        );
        let gx = BipartiteGraph::new(3, 5, &[]).unwrap();
        let gy = BipartiteGraph::new(3, 6, &[]).unwrap();
        assert!(Recommender::new(scorer.clone(), gx.clone(), gy.clone()).is_ok());
        // Wrong graph size.
        let small = BipartiteGraph::new(2, 5, &[]).unwrap();
        assert!(matches!(
            Recommender::new(scorer.clone(), small, gy.clone()),
            Err(ServeError::ShapeMismatch { .. })
        ));
        // Non-finite table.
        let mut bad = scorer.clone();
        bad.y_items.set(0, 0, f32::INFINITY);
        assert!(matches!(
            Recommender::new(bad, gx.clone(), gy.clone()),
            Err(ServeError::NonFiniteEmbeddings { table: "y_items" })
        ));
        // Mismatched embedding width.
        let mut narrow = scorer;
        narrow.x_items = Tensor::ones(5, 3);
        assert!(matches!(
            Recommender::new(narrow, gx, gy),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    fn frozen_pipeline() -> (Recommender, CdribModel, CdrScenario) {
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 19).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let bytes = model.save_bytes(&scenario);
        let rec = Recommender::from_artifact_bytes(&bytes).unwrap();
        (rec, model, scenario)
    }

    #[test]
    fn apply_delta_brings_new_cold_users_online() {
        use cdrib_graph::GraphDelta;

        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 31).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        assert!(rec.supports_deltas());
        assert_eq!(rec.epoch(), 0);

        // A brand-new cold-start user arrives with three source-domain (X)
        // interactions; one of them is with a brand-new item.
        let new_user = rec.seen_graph(DomainId::X).n_users() as u32;
        let new_item = rec.seen_graph(DomainId::X).n_items() as u32;
        let delta = GraphDelta {
            add_users: 1,
            add_items: 1,
            edges: vec![(new_user, 0), (new_user, 7), (new_user, new_item)],
            ..GraphDelta::empty()
        };
        let outcome = rec.apply_delta(DomainId::X, &delta).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.users_added, 1);
        assert_eq!(outcome.items_added, 1);
        assert_eq!(outcome.edges_added, 3);
        assert!(outcome.users_reencoded >= 1 && outcome.items_reencoded >= 1);
        assert_eq!(rec.epoch(), 1);
        assert_eq!(rec.catalogue_size(DomainId::X), new_item as usize + 1);

        // The new user is immediately recommendable in the target domain.
        let request = Request {
            direction: Direction::X_TO_Y,
            user: new_user,
            k: 10,
        };
        let mut out = Vec::new();
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out, rec.recommend_full_sort(&request).unwrap());

        // Differential check: a recommender re-frozen from scratch on the
        // post-delta graph must agree bitwise.
        let mut gx = scenario.x.train.clone();
        gx.apply_delta(&delta).unwrap();
        let mut reference = InferenceModel::from_model(&model);
        reference
            .extend_entities(DomainId::X, gx.n_users(), gx.n_items())
            .unwrap();
        reference.rebind_graph(DomainId::X, &gx).unwrap();
        let want = reference.embeddings().unwrap();
        assert_eq!(rec.scorer().x_users, want.x_users);
        assert_eq!(rec.scorer().x_items, want.x_items);
        let mut rebuilt = Recommender::new(want.into_scorer(), gx, scenario.y.train.clone()).unwrap();
        rebuilt.set_shared_user_prefix(scenario.n_overlap_total);
        assert_eq!(out, rebuilt.recommend_full_sort(&request).unwrap());
    }

    #[test]
    fn erased_users_and_delisted_items_drop_out_of_serving() {
        use cdrib_graph::GraphDelta;

        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 37).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();

        // A user joins with history, then invokes their right to erasure;
        // separately the catalogue delists an established X item.
        let user = rec.seen_graph(DomainId::X).n_users() as u32;
        let delisted = 3u32;
        rec.apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                edges: vec![(user, 0), (user, 7)],
                ..GraphDelta::empty()
            },
        )
        .unwrap();
        let outcome = rec
            .apply_delta(
                DomainId::X,
                &GraphDelta {
                    erase_users: vec![user],
                    delist_items: vec![delisted],
                    ..GraphDelta::empty()
                },
            )
            .unwrap();
        assert_eq!(outcome.users_erased, 1);
        assert_eq!(outcome.items_delisted, 1);
        assert!(outcome.edges_removed >= 2, "erasure drops the user's edges");
        assert_eq!(rec.erased_users(DomainId::X), &[user]);
        assert_eq!(rec.delisted_items(DomainId::X), &[delisted]);

        // The erased user keeps their id but serves from a clean slate:
        // no interactions, an all-zero embedding row, and a full target
        // catalogue when k covers it.
        assert!(rec.seen_graph(DomainId::X).items_of(user as usize).is_empty());
        assert!(rec.scorer().x_users.row(user as usize).iter().all(|&v| v == 0.0));
        let cat_y = rec.catalogue_size(DomainId::Y);
        let request = Request {
            direction: Direction::X_TO_Y,
            user,
            k: cat_y + 3,
        };
        let mut out = Vec::new();
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out.len(), cat_y);
        assert_eq!(out, rec.recommend_full_sort(&request).unwrap());

        // The delisted item keeps its slot (served ids stay stable) but is
        // excluded from every Y→X top-K, on the f32 heap path, the
        // full-sort reference, and the int8 prefilter path alike.
        assert_eq!(rec.catalogue_size(DomainId::X), scenario.x.train.n_items());
        let cat_x = rec.catalogue_size(DomainId::X);
        for precision in [ScoringPrecision::F32, ScoringPrecision::Int8] {
            rec.set_precision(precision);
            for probe in [0u32, rec.seen_graph(DomainId::Y).n_users() as u32 - 1] {
                let request = Request {
                    direction: Direction::Y_TO_X,
                    user: probe,
                    k: cat_x,
                };
                rec.recommend(&request, &mut out).unwrap();
                assert!(
                    out.iter().all(|r| r.item != delisted),
                    "{precision:?}: delisted item served to user {probe}"
                );
                // Only overlap users carry an X-domain seen list into Y→X.
                let seen = if (probe as usize) < scenario.n_overlap_total {
                    rec.seen_graph(DomainId::X).user_degree(probe as usize)
                } else {
                    0
                };
                assert_eq!(out.len(), cat_x - seen - 1, "{precision:?}: user {probe}");
                if precision == ScoringPrecision::F32 {
                    assert_eq!(out, rec.recommend_full_sort(&request).unwrap());
                }
            }
        }
    }

    #[test]
    fn non_overlap_users_never_alias_a_strangers_seen_list() {
        // User indices identify the same person across domains only inside
        // the shared overlap prefix. A source user beyond it (domain-only,
        // or appended by a delta) whose index happens to collide with an
        // existing target-domain user must NOT have that stranger's items
        // filtered from their recommendations.
        let mut rng = component_rng(53, "alias");
        let dim = 4;
        let (n_users, n_items) = (6usize, 12usize);
        let scorer = EmbeddingScorer::dot(
            normal_tensor(&mut rng, n_users, dim, 0.5),
            normal_tensor(&mut rng, n_items, dim, 0.5),
            normal_tensor(&mut rng, n_users, dim, 0.5),
            normal_tensor(&mut rng, n_items, dim, 0.5),
        );
        // Target-domain (Y) user 4 — a stranger to X user 4 — has history.
        let seen_x = BipartiteGraph::new(n_users, n_items, &[]).unwrap();
        let seen_y = BipartiteGraph::new(n_users, n_items, &[(4, 0), (4, 1), (4, 2)]).unwrap();
        let mut rec = Recommender::new(scorer, seen_x, seen_y).unwrap();
        let request = Request {
            direction: Direction::X_TO_Y,
            user: 4,
            k: n_items,
        };
        let mut out = Vec::new();
        // Default prefix (bare tables): indices are one shared id space, so
        // the history IS user 4's own and gets filtered.
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out.len(), n_items - 3);
        // With the overlap prefix ending at 2, X user 4 is a domain-only
        // user: the Y-side index-4 history belongs to someone else and the
        // full catalogue must come back, on both selection paths.
        rec.set_shared_user_prefix(2);
        assert_eq!(rec.shared_user_prefix(), 2);
        rec.recommend(&request, &mut out).unwrap();
        assert_eq!(out.len(), n_items);
        assert_eq!(out, rec.recommend_full_sort(&request).unwrap());
        // Overlap users keep their own filtering.
        let overlap_request = Request {
            direction: Direction::Y_TO_X,
            user: 1,
            k: n_items,
        };
        rec.recommend(&overlap_request, &mut out).unwrap();
        assert_eq!(out.len(), n_items); // user 1 has no X history
    }

    #[test]
    fn k_clamp_returns_full_ranked_list_for_fresh_user() {
        use cdrib_graph::GraphDelta;

        // Regression for the k-clamp edge case: a fresh user arriving
        // through an (edge-)empty delta asks for more items than the
        // catalogue holds. The engine must return the *full* ranked
        // catalogue — clamped against the live (post-delta) catalogue size,
        // never silently truncated against stale state — on both the single
        // and the batched path.
        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 33).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        let fresh = rec.seen_graph(DomainId::X).n_users() as u32;
        rec.apply_delta(
            DomainId::X,
            &GraphDelta {
                add_users: 1,
                add_items: 0,
                edges: vec![],
                ..GraphDelta::empty()
            },
        )
        .unwrap();
        // The target catalogue also grows by two items mid-flight.
        rec.apply_delta(
            DomainId::Y,
            &GraphDelta {
                add_users: 0,
                add_items: 2,
                edges: vec![],
                ..GraphDelta::empty()
            },
        )
        .unwrap();
        let catalogue = rec.catalogue_size(DomainId::Y);
        let request = Request {
            direction: Direction::X_TO_Y,
            user: fresh,
            k: catalogue + 100,
        };
        let mut out = Vec::new();
        rec.recommend(&request, &mut out).unwrap();
        // A fresh user has seen nothing, so the full catalogue comes back —
        // including the items added after the user appeared.
        assert_eq!(out.len(), catalogue);
        assert_eq!(out, rec.recommend_full_sort(&request).unwrap());
        let mut responses = Vec::new();
        rec.recommend_batch(std::slice::from_ref(&request), &mut responses)
            .unwrap();
        assert_eq!(responses[0].len(), catalogue);
        assert_eq!(responses[0], out);
        // Exact-fit k behaves identically.
        let exact = Request {
            k: catalogue,
            ..request
        };
        rec.recommend(&exact, &mut out).unwrap();
        assert_eq!(out.len(), catalogue);
    }

    #[test]
    fn delta_requires_an_updater_and_rejects_bad_edges_atomically() {
        use cdrib_graph::GraphDelta;

        let mut rec = random_setup(41, 10, 50, 4);
        assert!(!rec.supports_deltas());
        let err = rec.apply_delta(DomainId::X, &GraphDelta::empty());
        assert!(matches!(err, Err(ServeError::UpdaterMissing)));

        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 37).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        let edges_before = rec.seen_graph(DomainId::X).n_edges();
        let bad = GraphDelta {
            add_users: 0,
            add_items: 0,
            edges: vec![(u32::MAX, 0)],
            ..GraphDelta::empty()
        };
        assert!(matches!(
            rec.apply_delta(DomainId::X, &bad),
            Err(ServeError::Graph(cdrib_graph::GraphError::UserOutOfRange { .. }))
        ));
        // Nothing moved: graph, epoch and tables are untouched.
        assert_eq!(rec.seen_graph(DomainId::X).n_edges(), edges_before);
        assert_eq!(rec.epoch(), 0);
    }

    #[test]
    fn int8_precision_serves_deterministic_high_recall_lists() {
        use cdrib_tensor::QuantizedTable;
        use std::collections::HashSet;

        let mut rec = random_setup(61, 30, 400, 16);
        assert_eq!(rec.precision(), ScoringPrecision::F32);
        let request = |user| Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        };
        let f32_lists: Vec<_> = (0..30u32).map(|u| rec.recommend_vec(&request(u)).unwrap()).collect();
        rec.set_precision(ScoringPrecision::Int8);
        assert_eq!(rec.precision(), ScoringPrecision::Int8);
        assert_eq!(
            rec.quantized_items(DomainId::Y).unwrap(),
            &QuantizedTable::from_tensor(&rec.scorer().y_items)
        );
        let mut hits = 0usize;
        let mut total = 0usize;
        for (u, f32_list) in f32_lists.iter().enumerate() {
            let int8_list = rec.recommend_vec(&request(u as u32)).unwrap();
            assert_eq!(int8_list.len(), f32_list.len());
            // Bitwise determinism: a second int8 pass reproduces the list.
            assert_eq!(int8_list, rec.recommend_vec(&request(u as u32)).unwrap());
            let want: HashSet<u32> = f32_list.iter().map(|r| r.item).collect();
            hits += int8_list.iter().filter(|r| want.contains(&r.item)).count();
            total += f32_list.len();
        }
        // Quantisation noise may reorder near-ties but must not change the
        // retrieved set much.
        assert!(
            hits as f64 >= 0.95 * total as f64,
            "int8 recall@10 collapsed: {hits}/{total}"
        );
        // Batch and single paths agree under int8 too, at every worker count.
        let requests: Vec<Request> = (0..30u32).map(request).collect();
        let mut responses = Vec::new();
        rec.recommend_batch(&requests, &mut responses).unwrap();
        let mut single = Vec::new();
        for (req, batched) in requests.iter().zip(responses.iter()) {
            rec.recommend(req, &mut single).unwrap();
            assert_eq!(&single, batched);
        }
        let snapshot = responses.clone();
        for workers in [1usize, 2, 5] {
            rec.recommend_batch_with_workers(&requests, &mut responses, workers)
                .unwrap();
            assert_eq!(responses, snapshot, "workers={workers}");
        }
        // Switching back to f32 restores the original lists exactly.
        rec.set_precision(ScoringPrecision::F32);
        for (u, f32_list) in f32_lists.iter().enumerate() {
            assert_eq!(&rec.recommend_vec(&request(u as u32)).unwrap(), f32_list);
        }
    }

    #[test]
    fn delta_ingest_keeps_quant_tables_coherent() {
        use cdrib_graph::GraphDelta;
        use cdrib_tensor::QuantizedTable;

        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 43).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let mut rec = Recommender::from_inference_online(InferenceModel::from_model(&model), &scenario).unwrap();
        rec.set_precision(ScoringPrecision::Int8);
        let new_user = rec.seen_graph(DomainId::X).n_users() as u32;
        let new_item = rec.seen_graph(DomainId::X).n_items() as u32;
        // Several deltas so the shadow catch-up path is exercised on both
        // domains, including entity growth.
        let deltas = [
            (
                DomainId::X,
                GraphDelta {
                    add_users: 1,
                    add_items: 1,
                    edges: vec![(new_user, 0), (new_user, new_item)],
                    ..GraphDelta::empty()
                },
            ),
            (
                DomainId::Y,
                GraphDelta {
                    add_users: 0,
                    add_items: 0,
                    edges: vec![(1, 3), (2, 5)],
                    ..GraphDelta::empty()
                },
            ),
            (
                DomainId::X,
                GraphDelta {
                    add_users: 0,
                    add_items: 0,
                    edges: vec![(new_user, 7), (0, 2)],
                    ..GraphDelta::empty()
                },
            ),
        ];
        for (domain, delta) in &deltas {
            rec.apply_delta(*domain, delta).unwrap();
            // After every swap the int8 mirror equals a from-scratch
            // quantisation of the served f32 table — exactly, not almost.
            for d in [DomainId::X, DomainId::Y] {
                let table = match d {
                    DomainId::X => &rec.scorer().x_items,
                    DomainId::Y => &rec.scorer().y_items,
                };
                assert_eq!(
                    rec.quantized_items(d).unwrap(),
                    &QuantizedTable::from_tensor(table),
                    "domain {d:?} mirror drifted after a {domain:?} delta"
                );
            }
        }
        // And the delta-appended user is servable on the int8 path.
        let recs = rec
            .recommend_vec(&Request {
                direction: Direction::X_TO_Y,
                user: new_user,
                k: 10,
            })
            .unwrap();
        assert_eq!(recs.len(), 10);
    }

    #[test]
    fn quant_artifact_round_trips_into_a_serving_engine() {
        use cdrib_tensor::QuantizedTable;

        let scenario = build_preset(ScenarioKind::GameVideo, Scale::Tiny, 47).unwrap();
        let model = CdribModel::new(&CdribConfig::fast_test(), &scenario).unwrap();
        let bytes = cdrib_core::freeze_quant_bytes(&model, &scenario).unwrap();
        let mut rec = Recommender::from_quant_artifact_bytes(&bytes).unwrap();
        assert_eq!(rec.precision(), ScoringPrecision::Int8);
        assert_eq!(rec.shared_user_prefix(), scenario.n_overlap_total);
        // The served quant tables are exactly the frozen ones, and the
        // dequantised f32 tables requantise back to them (lossless mirror).
        let embeddings = model.infer_embeddings().unwrap();
        assert_eq!(
            rec.quantized_items(DomainId::X).unwrap(),
            &QuantizedTable::from_tensor(&embeddings.x_items)
        );
        assert_eq!(
            rec.quantized_items(DomainId::Y).unwrap(),
            &QuantizedTable::from_tensor(&rec.scorer().y_items)
        );
        let user = scenario.cold_x_to_y.test_users[0];
        let request = Request {
            direction: Direction::X_TO_Y,
            user,
            k: 10,
        };
        let recs = rec.recommend_vec(&request).unwrap();
        assert_eq!(recs.len(), 10);
        // A second engine loaded from the same bytes serves identical lists.
        let mut rec2 = Recommender::from_quant_artifact_bytes(&bytes).unwrap();
        assert_eq!(recs, rec2.recommend_vec(&request).unwrap());
    }

    #[test]
    fn artifact_pipeline_serves_tape_identical_scores() {
        let (mut rec, model, scenario) = frozen_pipeline();
        // The served tables are exactly the tape-side inference embeddings.
        let tape = model.infer_embeddings().unwrap();
        assert_eq!(rec.scorer().x_users, tape.x_users);
        assert_eq!(rec.scorer().y_items, tape.y_items);

        // Cold-start users receive full, strictly ordered top-K lists.
        let user = scenario.cold_x_to_y.test_users[0];
        let recs = rec
            .recommend_vec(&Request {
                direction: Direction::X_TO_Y,
                user,
                k: 10,
            })
            .unwrap();
        assert_eq!(recs.len(), 10);
        for pair in recs.windows(2) {
            assert!(ranks_above(
                (pair[0].score, pair[0].item),
                (pair[1].score, pair[1].item)
            ));
        }

        // And the InferenceModel route produces the same engine.
        let mut inference = InferenceModel::from_model(&model);
        let mut rec2 = Recommender::from_inference(&mut inference, &scenario).unwrap();
        let recs2 = rec2
            .recommend_vec(&Request {
                direction: Direction::X_TO_Y,
                user,
                k: 10,
            })
            .unwrap();
        assert_eq!(recs, recs2);
    }
}
