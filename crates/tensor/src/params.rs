//! Trainable-parameter storage.
//!
//! A [`ParamSet`] owns every trainable tensor of a model together with its
//! gradient accumulator. Models register parameters once at construction time
//! and receive stable [`ParamId`] handles; the autodiff [`Tape`](crate::tape::Tape)
//! reads parameter values when a forward pass touches them and writes the
//! accumulated gradients back after `backward`.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of the parameter (useful for optimizer state tables).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named collection of trainable tensors and their gradients.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    entries: Vec<ParamEntry>,
    by_name: HashMap<String, usize>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Registers a new parameter. Names must be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Result<ParamId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(TensorError::InvalidArgument {
                what: "ParamSet::add",
                detail: format!("duplicate parameter name `{name}`"),
            });
        }
        let grad = Tensor::zeros(value.rows(), value.cols());
        let id = self.entries.len();
        self.by_name.insert(name.clone(), id);
        self.entries.push(ParamEntry { name, value, grad });
        Ok(ParamId(id))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalar values.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Iterator over `(id, name)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (ParamId, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ParamId(i), e.name.as_str()))
    }

    /// Immutable access to a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Immutable access to a parameter gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable access to a parameter gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Simultaneous mutable access to a parameter's value and shared access
    /// to its gradient — the split borrow optimizers need to apply an update
    /// without cloning the gradient first.
    pub fn value_and_grad(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let entry = &mut self.entries[id.0];
        (&mut entry.value, &entry.grad)
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Adds `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) -> Result<()> {
        self.entries[id.0].grad.add_assign(delta)
    }

    /// Global L2 norm of all gradients (used for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries.iter().map(|e| e.grad.sum_squares()).sum::<f32>().sqrt()
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    /// Returns the scaling factor applied (1.0 when no clipping happened).
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_in_place(scale);
            }
            scale
        } else {
            1.0
        }
    }

    /// Sum of squared parameter values (for explicit L2 regularisation terms).
    pub fn l2_penalty(&self) -> f32 {
        self.entries.iter().map(|e| e.value.sum_squares()).sum()
    }

    /// Returns true if every parameter and gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.entries.iter().all(|e| e.value.all_finite() && e.grad.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = ParamSet::new();
        let a = p.add("w1", Tensor::ones(2, 3)).unwrap();
        let b = p.add("w2", Tensor::zeros(4, 1)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 10);
        assert_eq!(p.id_of("w1"), Some(a));
        assert_eq!(p.id_of("nope"), None);
        assert_eq!(p.name(b), "w2");
        assert_eq!(p.value(a).sum(), 6.0);
        assert!(p.add("w1", Tensor::zeros(1, 1)).is_err());
        let ids: Vec<_> = p.iter_ids().map(|(_, n)| n.to_string()).collect();
        assert_eq!(ids, vec!["w1", "w2"]);
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut p = ParamSet::new();
        let a = p.add("w", Tensor::zeros(2, 2)).unwrap();
        p.accumulate_grad(a, &Tensor::ones(2, 2)).unwrap();
        p.accumulate_grad(a, &Tensor::ones(2, 2)).unwrap();
        assert_eq!(p.grad(a).sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad(a).sum(), 0.0);
        assert!(p.accumulate_grad(a, &Tensor::ones(3, 3)).is_err());
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut p = ParamSet::new();
        let a = p.add("w", Tensor::zeros(1, 2)).unwrap();
        *p.grad_mut(a) = Tensor::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
        let s = p.clip_grad_norm(1.0);
        assert!((s - 0.2).abs() < 1e-6);
        assert!((p.grad_norm() - 1.0).abs() < 1e-5);
        let s2 = p.clip_grad_norm(10.0);
        assert_eq!(s2, 1.0);
    }

    #[test]
    fn l2_and_finiteness() {
        let mut p = ParamSet::new();
        let a = p.add("w", Tensor::full(2, 2, 2.0)).unwrap();
        assert_eq!(p.l2_penalty(), 16.0);
        assert!(p.all_finite());
        p.value_mut(a).set(0, 0, f32::NAN);
        assert!(!p.all_finite());
    }
}
