//! Benchmarks the leave-one-out evaluation protocol itself (negative
//! sampling + scoring + ranking), which dominates wall-clock time when the
//! paper's 999-negative protocol is applied to every held-out interaction.

use cdrib_data::{build_preset, Direction, Scale, ScenarioKind};
use cdrib_eval::{evaluate_cold_start, EmbeddingScorer, EvalConfig, EvalSplit};
use cdrib_tensor::rng::component_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let scenario = build_preset(ScenarioKind::ClothSport, Scale::Tiny, 5).unwrap();
    let mut rng = component_rng(0, "bench-eval");
    let dim = 64;
    let scorer = EmbeddingScorer::dot(
        cdrib_tensor::rng::normal_tensor(&mut rng, scenario.x.n_users, dim, 0.1),
        cdrib_tensor::rng::normal_tensor(&mut rng, scenario.x.n_items, dim, 0.1),
        cdrib_tensor::rng::normal_tensor(&mut rng, scenario.y.n_users, dim, 0.1),
        cdrib_tensor::rng::normal_tensor(&mut rng, scenario.y.n_items, dim, 0.1),
    );
    let mut group = c.benchmark_group("leave_one_out_protocol");
    for negatives in [50usize, 99] {
        let cfg = EvalConfig {
            n_negatives: negatives,
            seed: 3,
            max_cases: Some(50),
        };
        group.bench_with_input(BenchmarkId::new("negatives", negatives), &negatives, |b, _| {
            b.iter(|| {
                black_box(
                    evaluate_cold_start(&scorer, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg)
                        .unwrap()
                        .metrics,
                )
            })
        });
        // The same protocol driven by an allocating scalar per-pair closure:
        // the pre-batching scoring path, kept as the comparison baseline for
        // the fused `score_candidates_*` kernels.
        let scalar = |d: Direction, u: u32, items: &[u32]| -> Vec<f32> { scorer.score_items_scalar(d, u, items) };
        group.bench_with_input(BenchmarkId::new("negatives_scalar", negatives), &negatives, |b, _| {
            b.iter(|| {
                black_box(
                    evaluate_cold_start(&scalar, &scenario, Direction::X_TO_Y, EvalSplit::Test, &cfg)
                        .unwrap()
                        .metrics,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = evaluation;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_protocol
}
criterion_main!(evaluation);
