//! Plain-text report formatting for the experiment runners.
//!
//! Every table binary in `cdrib-bench` prints rows through these helpers so
//! the output has a consistent, paper-like layout that is easy to diff
//! against EXPERIMENTS.md.

use crate::metrics::RankingMetrics;
use crate::stats::MeanStd;

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric value in percent with two decimals (paper convention).
pub fn pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

/// Formats a mean ± std pair of *normalised* metric values in percent.
pub fn pct_mean_std(stats: &MeanStd) -> String {
    format!("{:.2} ±{:.2}", stats.mean * 100.0, stats.std * 100.0)
}

/// The column order used by the main results tables
/// (MRR, NDCG@5, NDCG@10, HR@1, HR@5, HR@10).
pub fn metric_columns() -> Vec<&'static str> {
    vec!["MRR", "NDCG@5", "NDCG@10", "HR@1", "HR@5", "HR@10"]
}

/// Extracts the table-ordered values of a metrics bundle.
pub fn metric_values(m: &RankingMetrics) -> [f64; 6] {
    [m.mrr, m.ndcg5, m.ndcg10, m.hr1, m.hr5, m.hr10]
}

/// Formats one results row: method name followed by the six metrics in
/// percent.
pub fn metrics_row(method: &str, m: &RankingMetrics) -> Vec<String> {
    let mut row = vec![method.to_string()];
    row.extend(metric_values(m).iter().map(|&v| pct(v)));
    row
}

/// Formats one results row with mean ± std over seeds for each metric.
pub fn metrics_row_mean_std(method: &str, per_metric: &[MeanStd; 6]) -> Vec<String> {
    let mut row = vec![method.to_string()];
    row.extend(per_metric.iter().map(pct_mean_std));
    row
}

/// Aggregates per-seed metric bundles into per-metric mean ± std.
pub fn aggregate_runs(runs: &[RankingMetrics]) -> [MeanStd; 6] {
    let collect = |f: fn(&RankingMetrics) -> f64| -> MeanStd {
        let vals: Vec<f64> = runs.iter().map(f).collect();
        MeanStd::of(&vals)
    };
    [
        collect(|m| m.mrr),
        collect(|m| m.ndcg5),
        collect(|m| m.ndcg10),
        collect(|m| m.hr1),
        collect(|m| m.hr5),
        collect(|m| m.hr10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Method", "MRR"]);
        t.add_row(vec!["CDRIB", "7.01"]);
        t.add_row(vec!["a-very-long-method-name", "4.2"]);
        t.add_row(vec!["short"]);
        let s = t.render();
        assert!(s.contains("CDRIB"));
        assert!(s.contains("a-very-long-method-name"));
        assert_eq!(t.n_rows(), 3);
        // header line and separator line present
        assert!(s.lines().count() >= 5);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0701), "7.01");
        let ms = MeanStd::of(&[0.070, 0.072, 0.068]);
        let s = pct_mean_std(&ms);
        assert!(s.starts_with("7.00"));
        assert_eq!(metric_columns().len(), 6);
        let m = RankingMetrics {
            mrr: 0.07,
            ndcg5: 0.06,
            ndcg10: 0.0768,
            hr1: 0.029,
            hr5: 0.09,
            hr10: 0.1429,
        };
        let row = metrics_row("CDRIB", &m);
        assert_eq!(row.len(), 7);
        assert_eq!(row[0], "CDRIB");
        assert_eq!(row[3], "7.68");
        assert_eq!(metric_values(&m)[5], 0.1429);
    }

    #[test]
    fn aggregation_over_runs() {
        let runs = vec![
            RankingMetrics::from_rank(1),
            RankingMetrics::from_rank(2),
            RankingMetrics::from_rank(3),
        ];
        let agg = aggregate_runs(&runs);
        assert_eq!(agg[0].n, 3);
        assert!(agg[0].mean > 0.5 && agg[0].mean < 1.0);
        let row = metrics_row_mean_std("X", &agg);
        assert_eq!(row.len(), 7);
        assert!(row[1].contains('±'));
    }
}
