//! Regenerates Figure 5: sensitivity to the Lagrangian multiplier `beta`
//! (both `beta_1` and `beta_2` set to the same value, swept 0.5 .. 2.0).
//!
//! Usage:
//! `cargo run --release -p cdrib-bench --bin fig5_beta -- [--scenario game-video] [--scale tiny]`

use cdrib_bench::{Args, ExperimentSettings};
use cdrib_core::train;
use cdrib_data::ScenarioKind;
use cdrib_eval::{evaluate_both_directions, pct, EvalSplit, TextTable};

fn main() {
    let args = Args::from_env();
    let settings = ExperimentSettings::from_args(&args);
    let kind = ScenarioKind::parse(args.get("scenario").unwrap_or("game-video")).expect("valid --scenario");
    let seed = settings.seeds[0];
    let scenario = settings.scenario(kind, seed);
    let (x_name, y_name) = kind.domain_names();

    println!(
        "Figure 5 — effect of the Lagrangian multiplier beta on {} (scale {:?})",
        kind.name(),
        settings.scale
    );
    println!(
        "Paper reference: the best beta depends on the interaction scale; denser scenarios prefer smaller beta.\n"
    );

    let mut table = TextTable::new(vec![
        "beta",
        &format!("MRR (->{y_name})"),
        &format!("NDCG@10 (->{y_name})"),
        &format!("HR@10 (->{y_name})"),
        &format!("MRR (->{x_name})"),
        &format!("HR@10 (->{x_name})"),
    ]);
    for beta in [0.5f32, 1.0, 1.5, 2.0] {
        let config = settings.cdrib_config(seed).with_beta(beta);
        let trained = train(&config, &scenario).expect("training");
        let eval_cfg = settings.eval_config(&scenario, seed);
        let (x2y, y2x) = evaluate_both_directions(&trained.scorer(), &scenario, EvalSplit::Test, &eval_cfg).unwrap();
        table.add_row(vec![
            format!("{beta:.1}"),
            pct(x2y.metrics.mrr),
            pct(x2y.metrics.ndcg10),
            pct(x2y.metrics.hr10),
            pct(y2x.metrics.mrr),
            pct(y2x.metrics.hr10),
        ]);
    }
    println!("{}", table.render());
}
