//! Top-K parity gate of the int8 serving path.
//!
//! Quantised scoring trades exactness for memory traffic, so it ships behind
//! two fences:
//!
//! 1. **Retrieval parity** — on the small preset, the int8 engine's top-10
//!    must overlap the f32 engine's top-10 with recall >= 0.99 across every
//!    cold-start test user in both transfer directions (plus an exact-match
//!    floor on whole lists).
//! 2. **Exactness where exactness is owed** — the serve path's heap
//!    selection over quantised scores must reproduce, *bitwise*, a scalar
//!    reference that quantises the same user row, scores the full catalogue
//!    through the serial int8 kernel, filters seen items and full-sorts
//!    under the shared `(score desc, item asc)` order (proptest over random
//!    users, catalogues, widths and both score kinds); and identically
//!    rebuilt engines must serve identical lists (bitwise determinism).

use cdrib::core::{CdribConfig, CdribModel};
use cdrib::data::{build_preset, Direction, DomainId, Scale, ScenarioKind};
use cdrib::eval::{EmbeddingScorer, ScoreKind};
use cdrib::graph::BipartiteGraph;
use cdrib::serve::{ranks_above, Recommendation, Recommender, Request, ScoringPrecision};
use cdrib::tensor::kernels::{self, QuantUser};
use cdrib::tensor::quant::quantize_user_into;
use cdrib::tensor::rng::{component_rng, normal_tensor};
use proptest::prelude::*;
use rand::Rng;
use std::collections::HashSet;

#[test]
fn int8_recall_at_10_vs_f32_exceeds_099_on_the_small_preset() {
    let scenario = build_preset(ScenarioKind::GameVideo, Scale::Small, 17).unwrap();
    let config = CdribConfig {
        dim: 32,
        layers: 2,
        eval_every: 0,
        patience: 0,
        seed: 17,
        ..CdribConfig::default()
    };
    let model = CdribModel::new(&config, &scenario).unwrap();
    let embeddings = model.infer_embeddings().unwrap();
    let mut rec = Recommender::from_embeddings(embeddings, &scenario).unwrap();

    // The preset's cold-start test cohorts are small; the recall gate wants
    // population-level evidence, so every user serves as a requester in
    // their cold direction (capped to keep the suite fast).
    let cohort = |n: usize| (0..n as u32).take(500);
    let requests: Vec<Request> = cohort(rec.scorer().x_users.rows())
        .map(|user| (Direction::X_TO_Y, user))
        .chain(cohort(rec.scorer().y_users.rows()).map(|user| (Direction::Y_TO_X, user)))
        .map(|(direction, user)| Request { direction, user, k: 10 })
        .collect();
    assert!(requests.len() >= 100, "small preset should supply a real cohort");

    let f32_lists: Vec<Vec<Recommendation>> = requests.iter().map(|r| rec.recommend_vec(r).unwrap()).collect();
    rec.set_precision(ScoringPrecision::Int8);
    let int8_lists: Vec<Vec<Recommendation>> = requests.iter().map(|r| rec.recommend_vec(r).unwrap()).collect();

    let (mut hits, mut total, mut exact) = (0usize, 0usize, 0usize);
    for (f32_list, int8_list) in f32_lists.iter().zip(int8_lists.iter()) {
        assert_eq!(f32_list.len(), int8_list.len());
        let want: HashSet<u32> = f32_list.iter().map(|r| r.item).collect();
        let got: Vec<u32> = int8_list.iter().map(|r| r.item).collect();
        hits += got.iter().filter(|item| want.contains(item)).count();
        total += f32_list.len();
        // Exact match compares the ranked item sequence, not scores (the
        // int8 scores live on a different numeric grid by construction).
        exact += usize::from(f32_list.iter().map(|r| r.item).eq(got.iter().copied()));
    }
    let recall = hits as f64 / total as f64;
    let exact_rate = exact as f64 / requests.len() as f64;
    assert!(
        recall >= 0.99,
        "int8 recall@10 vs f32 is {recall:.4} over {} requests (need >= 0.99)",
        requests.len()
    );
    // The untrained-tape embeddings used here are deliberately tie-heavy, so
    // near-tie reordering under the quantised grid is common; the floor
    // catches wholesale divergence, the recall gate above is the real fence.
    assert!(
        exact_rate >= 0.5,
        "int8 exact-list rate vs f32 is {exact_rate:.4} (expected at least half the lists identical)"
    );

    // Bitwise determinism: an identically rebuilt int8 engine reproduces
    // every list — items *and* scores.
    let embeddings2 = model.infer_embeddings().unwrap();
    let mut rec2 = Recommender::from_embeddings(embeddings2, &scenario).unwrap();
    rec2.set_precision(ScoringPrecision::Int8);
    for (request, list) in requests.iter().zip(int8_lists.iter()) {
        assert_eq!(&rec2.recommend_vec(request).unwrap(), list);
    }
}

/// Scalar int8 reference selection: quantise the user row, score the whole
/// catalogue through the serial integer kernel, filter the user's seen
/// items, full-sort under the shared total order, truncate to `k`.
fn int8_reference(rec: &Recommender, request: &Request) -> Vec<Recommendation> {
    let Request { direction, user, k } = *request;
    let users = match direction.source {
        DomainId::X => &rec.scorer().x_users,
        DomainId::Y => &rec.scorer().y_users,
    };
    let table = rec.quantized_items(direction.target).expect("int8 engine");
    let mut user_q = vec![0u8; users.cols()];
    let (scale, norm) = quantize_user_into(users.row(user as usize), &mut user_q);
    let qu = QuantUser {
        q: &user_q,
        scale,
        norm,
    };
    let catalogue: Vec<u32> = (0..table.rows() as u32).collect();
    let mut scores = vec![0.0f32; catalogue.len()];
    match rec.scorer().kind {
        ScoreKind::Dot => kernels::score_candidates_quant_dot_serial(table.view(), qu, &catalogue, &mut scores),
        ScoreKind::NegativeDistance => {
            kernels::score_candidates_quant_neg_sq_dist_serial(table.view(), qu, &catalogue, &mut scores)
        }
    }
    let seen = rec.seen_graph(direction.target).items_of(user as usize);
    let mut ranked: Vec<(f32, u32)> = catalogue
        .iter()
        .zip(scores.iter())
        .filter(|&(&item, _)| seen.binary_search(&item).is_err())
        .map(|(&item, &score)| (score, item))
        .collect();
    ranked.sort_by(|a, b| {
        if ranks_above(*a, *b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    ranked.truncate(k);
    ranked
        .into_iter()
        .map(|(score, item)| Recommendation { item, score })
        .collect()
}

/// A random serving setup over `seed`: random tables of width `dim`, random
/// seen-item graphs, either score kind.
fn random_engine(seed: u64, n_users: usize, n_items: usize, dim: usize, negative_distance: bool) -> Recommender {
    let mut rng = component_rng(seed, "quant-parity");
    let x_users = normal_tensor(&mut rng, n_users, dim, 0.5);
    let x_items = normal_tensor(&mut rng, n_items, dim, 0.5);
    let y_users = normal_tensor(&mut rng, n_users, dim, 0.5);
    let y_items = normal_tensor(&mut rng, n_items, dim, 0.5);
    let scorer = if negative_distance {
        EmbeddingScorer::negative_distance(x_users, x_items, y_users, y_items)
    } else {
        EmbeddingScorer::dot(x_users, x_items, y_users, y_items)
    };
    let mut edges_x = Vec::new();
    let mut edges_y = Vec::new();
    for u in 0..n_users {
        for _ in 0..rng.gen_range(0..4) {
            edges_x.push((u, rng.gen_range(0..n_items)));
        }
        for _ in 0..rng.gen_range(0..4) {
            edges_y.push((u, rng.gen_range(0..n_items)));
        }
    }
    let seen_x = BipartiteGraph::new(n_users, n_items, &edges_x).unwrap();
    let seen_y = BipartiteGraph::new(n_users, n_items, &edges_y).unwrap();
    let mut rec = Recommender::new(scorer, seen_x, seen_y).unwrap();
    rec.set_precision(ScoringPrecision::Int8);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn int8_serving_matches_the_scalar_reference_bitwise(
        (n_users, n_items, dim, seed, negdist, k) in
            (3usize..24, 10usize..260, 1usize..48, 0u64..10_000, 0usize..2, 1usize..40)
                .prop_map(|(u, i, d, s, nd, k)| (u, i, d, s, nd == 1, k))
    ) {
        let mut rec = random_engine(seed, n_users, n_items, dim, negdist);
        let mut rebuilt = random_engine(seed, n_users, n_items, dim, negdist);
        let mut out = Vec::new();
        for direction in [Direction::X_TO_Y, Direction::Y_TO_X] {
            for user in 0..n_users as u32 {
                let request = Request { direction, user, k };
                rec.recommend(&request, &mut out).unwrap();
                // The chunked SIMD int8 path + bounded heap must equal the
                // serial-kernel + full-sort reference bitwise: same items,
                // same scores, same order. (The int8 kernels are exact
                // integer arithmetic, so every ISA tier lands on identical
                // f32 scores — the heap/sort agreement is then total-order
                // parity, the same property the f32 path pins.)
                let reference = int8_reference(&rec, &request);
                prop_assert_eq!(&out, &reference, "direction {:?} user {}", direction, user);
                // Bitwise determinism across identically built engines.
                let mut out2 = Vec::new();
                rebuilt.recommend(&request, &mut out2).unwrap();
                prop_assert_eq!(&out, &out2);
            }
        }
    }
}
