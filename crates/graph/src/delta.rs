//! Incremental graph deltas.
//!
//! A production recommender ingests interactions continuously: a cold-start
//! user arrives with a handful of source-domain clicks and must be servable
//! *now*, not after the next artifact re-freeze. A [`GraphDelta`] is the unit
//! of that ingestion — new users, new items and new edges for **one** domain
//! — and [`DeltaEffect`] is the receipt the rest of the stack consumes: which
//! entity neighbourhoods the delta addressed (the seed of the dirty-set
//! propagation in `cdrib_core::InferenceModel`) and how the graph actually
//! changed (duplicate edges collapse, exactly as they do at construction).
//!
//! Deltas are additive: interactions are observations, and the paper's
//! setting never retracts one. Removal would force dirty-set propagation
//! through *shrinking* neighbourhoods and is out of scope here.
//!
//! Deltas also serialize (via the workspace serde stand-in): the serving
//! layer's write-ahead log persists every accepted batch, so the encoded
//! form is a durability format, pinned bitwise by
//! `tests/artifact_roundtrip.rs`.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A batch of additive changes to one domain's bipartite interaction graph.
///
/// Indices in [`GraphDelta::edges`] may reference entities the same delta
/// introduces: with `add_users = 2` on a 10-user graph, users `10` and `11`
/// are valid edge endpoints. Application is atomic — an out-of-range edge
/// rejects the whole batch before anything is mutated.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Number of new users appended after the current user range.
    pub add_users: usize,
    /// Number of new items appended after the current item range.
    pub add_items: usize,
    /// New `(user, item)` interactions; duplicates (against the graph or
    /// within the batch) are collapsed, matching construction semantics.
    pub edges: Vec<(u32, u32)>,
}

impl GraphDelta {
    /// A delta that changes nothing.
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Whether the delta requests no change at all.
    pub fn is_empty(&self) -> bool {
        self.add_users == 0 && self.add_items == 0 && self.edges.is_empty()
    }

    /// Validates every edge against the *post-delta* entity ranges of a
    /// graph currently holding `n_users` × `n_items`, without mutating
    /// anything. This is the exact acceptance predicate of
    /// [`apply_delta_into`](crate::BipartiteGraph::apply_delta_into) (whose
    /// atomicity it implements), factored out so a durability layer can
    /// establish *before* appending a delta to its write-ahead log that the
    /// graph will accept it — a logged record must never be one the live
    /// apply would then reject.
    pub fn check_bounds(&self, n_users: usize, n_items: usize) -> Result<()> {
        let new_users = n_users + self.add_users;
        let new_items = n_items + self.add_items;
        for &(u, i) in &self.edges {
            if u as usize >= new_users {
                return Err(GraphError::UserOutOfRange {
                    user: u as usize,
                    n_users: new_users,
                });
            }
            if i as usize >= new_items {
                return Err(GraphError::ItemOutOfRange {
                    item: i as usize,
                    n_items: new_items,
                });
            }
        }
        Ok(())
    }
}

/// What applying a [`GraphDelta`] did, with reusable storage: the touched
/// lists keep their capacity across batches, so steady-state ingestion of
/// same-shaped deltas never allocates (`tests/alloc_regression.rs`).
#[derive(Debug, Clone, Default)]
pub struct DeltaEffect {
    /// Users appended by the delta.
    pub users_added: usize,
    /// Items appended by the delta.
    pub items_added: usize,
    /// Edges actually inserted (duplicates excluded).
    pub edges_added: usize,
    /// Edges skipped because the interaction already existed (in the graph
    /// or earlier in the same batch).
    pub duplicate_edges: usize,
    /// Sorted, deduplicated users whose neighbourhood the delta addressed:
    /// every edge endpoint (including duplicates — re-encoding an unchanged
    /// row is idempotent, so over-approximating costs work, never
    /// correctness) plus every newly added user.
    pub touched_users: Vec<u32>,
    /// Sorted, deduplicated items, same notion as
    /// [`DeltaEffect::touched_users`].
    pub touched_items: Vec<u32>,
}

impl DeltaEffect {
    /// Fresh, empty effect storage.
    pub fn new() -> Self {
        DeltaEffect::default()
    }

    /// Resets the counters and clears the touched lists, keeping capacity.
    pub fn clear(&mut self) {
        self.users_added = 0;
        self.items_added = 0;
        self.edges_added = 0;
        self.duplicate_edges = 0;
        self.touched_users.clear();
        self.touched_items.clear();
    }

    /// Whether the graph structure actually changed (entities appended or
    /// edges inserted). A duplicate-only delta leaves the graph — and every
    /// normalised view of it — identical.
    pub fn structural_change(&self) -> bool {
        self.users_added > 0 || self.items_added > 0 || self.edges_added > 0
    }

    /// Whether the delta addressed any entity at all (even redundantly).
    pub fn is_noop(&self) -> bool {
        !self.structural_change() && self.touched_users.is_empty() && self.touched_items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_noop_semantics() {
        assert!(GraphDelta::empty().is_empty());
        assert!(!GraphDelta {
            add_users: 1,
            ..GraphDelta::empty()
        }
        .is_empty());

        let mut effect = DeltaEffect::new();
        assert!(effect.is_noop());
        effect.duplicate_edges = 1;
        effect.touched_users.push(3);
        assert!(!effect.structural_change());
        assert!(!effect.is_noop());
        effect.clear();
        assert!(effect.is_noop());
        effect.edges_added = 2;
        assert!(effect.structural_change());
    }
}
