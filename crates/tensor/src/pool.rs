//! Recyclable tensor storage.
//!
//! CDRIB trains for hundreds of epochs over a graph whose shape never
//! changes, so every forward/backward pass requests exactly the same set of
//! buffer sizes. A [`BufferPool`] keeps the `Vec<f32>` storage of retired
//! tensors keyed by element count and hands it back on the next request,
//! turning the per-step allocator traffic of the [`Tape`](crate::tape::Tape)
//! into plain pointer swaps after a short warm-up.
//!
//! The pool keys on a rounded-up *size class*, not on `(rows, cols)`: a
//! `4 x 6` buffer can serve a later `6 x 4` request because tensors are
//! dense row-major and the storage carries no shape of its own, and a
//! 20 000-row batch buffer can serve next epoch's 20 113-row batch because
//! every class is rounded up in 12.5% steps (the buffer is handed out
//! truncated to the requested length). Without the rounding, batch-length
//! jitter would defeat the pool twice over: the multi-megabyte epoch buffers
//! would be allocated fresh from `mmap` every epoch (paying page faults far
//! costlier than the compute they feed), and the mid-sized per-step buffers
//! whose lengths depend on batch *composition* — how many overlap users a
//! shuffled batch happens to contain — would miss on every step.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Upper bound on retained buffers per size class; beyond it, returned
/// storage is dropped. A training step never holds more than a few dozen
/// same-shaped tensors at once, so this only guards against pathological
/// callers that keep returning without ever taking.
const MAX_PER_CLASS: usize = 256;

/// Smallest rounding step of [`size_class`]; keeps the class count bounded
/// for tiny buffers where proportional steps would degenerate to 1.
const MIN_CLASS_STEP: usize = 8;

/// The size class (storage capacity in elements) serving requests of `len`
/// elements: rounded up to the next 1/8th of the largest power of two at or
/// below `len` (at most 12.5% slack, [`MIN_CLASS_STEP`] elements minimum),
/// so slightly different lengths share storage.
fn size_class(len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let pow2_at_or_below = if len.is_power_of_two() {
        len
    } else {
        len.next_power_of_two() / 2
    };
    let step = (pow2_at_or_below / 8).max(MIN_CLASS_STEP);
    len.div_ceil(step) * step
}

/// Hit/miss counters of a [`BufferPool`] (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from recycled storage.
    pub hits: u64,
    /// Requests that had to allocate fresh storage.
    pub misses: u64,
    /// Buffers currently parked in the pool.
    pub parked: usize,
}

/// A size-class keyed recycler of dense `f32` buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a `rows x cols` tensor whose contents are **unspecified** (the
    /// stale values of whatever tensor last used the storage). Callers must
    /// overwrite every element before reading.
    pub fn take_uninit(&mut self, rows: usize, cols: usize) -> Tensor {
        let len = rows * cols;
        let class = size_class(len);
        if let Some(mut data) = self.buckets.get_mut(&class).and_then(Vec::pop) {
            self.hits += 1;
            debug_assert_eq!(data.len(), class);
            data.truncate(len);
            return Tensor::from_raw(rows, cols, data);
        }
        self.misses += 1;
        let mut data = vec![0.0; class];
        data.truncate(len);
        Tensor::from_raw(rows, cols, data)
    }

    /// Takes a `rows x cols` tensor guaranteed to be all zeros (for kernels
    /// that accumulate into their output).
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.take_uninit(rows, cols);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// Returns a tensor's storage to the pool for reuse. Storage whose
    /// capacity falls short of its size class (a caller-built tensor with an
    /// exact-length allocation) is grown once on the way in, so the pool
    /// only ever hands out buffers of full class capacity; buffers that
    /// cycled through the pool before re-park without touching the
    /// allocator.
    pub fn put(&mut self, tensor: Tensor) {
        let mut data = tensor.into_vec();
        if data.is_empty() {
            return;
        }
        let class = size_class(data.len());
        let bucket = self.buckets.entry(class).or_default();
        if bucket.len() >= MAX_PER_CLASS {
            return;
        }
        if data.capacity() < class {
            data.reserve_exact(class - data.len());
        }
        data.resize(class, 0.0);
        bucket.push(data);
    }

    /// Ensures at least `count` buffers of the size class serving `len`
    /// elements are parked, allocating the shortfall now. Callers with a
    /// known steady-state working set (e.g. the delta re-encode's full-table
    /// stages) prewarm their classes up front so even the first post-warm-up
    /// request is a pool hit; the prewarm itself counts as neither hit nor
    /// miss.
    pub fn prewarm(&mut self, len: usize, count: usize) {
        if len == 0 {
            return;
        }
        let class = size_class(len);
        let bucket = self.buckets.entry(class).or_default();
        while bucket.len() < count.min(MAX_PER_CLASS) {
            bucket.push(vec![0.0; class]);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            parked: self.buckets.values().map(Vec::len).sum(),
        }
    }

    /// Drops all parked buffers (counters are kept).
    pub fn clear(&mut self) {
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_storage_by_element_count() {
        let mut pool = BufferPool::new();
        let a = pool.take_uninit(2, 3);
        assert_eq!(pool.stats().misses, 1);
        pool.put(a);
        assert_eq!(pool.stats().parked, 1);
        // Same element count, different shape: still a hit.
        let b = pool.take_uninit(3, 2);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().parked, 0);
        pool.put(b);
        // Different size class: a miss.
        let c = pool.take_uninit(4, 4);
        assert_eq!(pool.stats().misses, 2);
        pool.put(c);
        assert_eq!(pool.stats().parked, 2);
    }

    #[test]
    fn size_classes_bound_slack_at_one_eighth() {
        for len in [
            100usize,
            4096,
            4097,
            5000,
            8192,
            8193,
            20_113 * 32,
            650_000,
            1 << 20,
            (1 << 20) + 1,
        ] {
            let class = size_class(len);
            assert!(class >= len, "class {class} must cover len {len}");
            assert!(
                class - len <= (len / 8).max(MIN_CLASS_STEP),
                "len {len}: class {class} wastes {} (> 12.5%)",
                class - len
            );
        }
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(4096), 4096);
        // Nearby lengths share a class (the batch-jitter property) at every
        // scale: multi-megabyte epoch buffers and mid-sized per-step buffers
        // whose lengths depend on batch composition.
        assert_eq!(size_class(650_000), size_class(650_900));
        assert_eq!(size_class(38_400), size_class(38_900));
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut pool = BufferPool::new();
        let mut a = pool.take_uninit(2, 2);
        a.as_mut_slice().fill(7.0);
        pool.put(a);
        let b = pool.take_zeroed(2, 2);
        assert_eq!(b.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn empty_tensors_are_not_parked() {
        let mut pool = BufferPool::new();
        let a = pool.take_uninit(0, 5);
        pool.put(a);
        assert_eq!(pool.stats().parked, 0);
    }

    #[test]
    fn prewarm_parks_buffers_ahead_of_takes() {
        let mut pool = BufferPool::new();
        pool.prewarm(6, 3);
        assert_eq!(pool.stats().parked, 3);
        assert_eq!(pool.stats().misses, 0);
        for _ in 0..3 {
            let t = pool.take_uninit(2, 3);
            assert_eq!(t.shape(), (2, 3));
        }
        assert_eq!(pool.stats().hits, 3);
        assert_eq!(pool.stats().misses, 0);
        // Prewarming an already-covered class is a no-op.
        let t = pool.take_uninit(2, 3);
        pool.put(t);
        pool.prewarm(6, 1);
        assert_eq!(pool.stats().parked, 1);
        pool.prewarm(0, 5);
        assert_eq!(pool.stats().parked, 1);
    }

    #[test]
    fn clear_drops_parked_buffers() {
        let mut pool = BufferPool::new();
        let a = pool.take_uninit(2, 2);
        pool.put(a);
        pool.clear();
        assert_eq!(pool.stats().parked, 0);
        let _ = pool.take_uninit(2, 2);
        assert_eq!(pool.stats().misses, 2);
    }
}
